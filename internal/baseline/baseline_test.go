package baseline

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/stablestore"
	"etx/internal/transport"
	"etx/internal/xadb"
)

// rig wires the database tier (core.DataServer over xadb) plus whatever
// baseline servers a test needs.
type rig struct {
	t   *testing.T
	net *transport.MemNetwork
	dbs []id.NodeID
	eng map[id.NodeID]*xadb.Engine
}

func newRig(t *testing.T, nDBs int, seed []kv.Write) *rig {
	t.Helper()
	r := &rig{
		t:   t,
		net: transport.NewMemNetwork(transport.Options{}),
		eng: make(map[id.NodeID]*xadb.Engine),
	}
	t.Cleanup(r.net.Close)
	for i := 1; i <= nDBs; i++ {
		dbID := id.DBServer(i)
		r.dbs = append(r.dbs, dbID)
		ep, err := r.net.Attach(dbID)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := xadb.Open(stablestore.New(0), xadb.Config{Self: dbID, LockTimeout: 100 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if len(seed) > 0 {
			engine.Seed(seed)
		}
		srv, err := core.NewDataServer(core.DataServerConfig{
			Self: dbID, Engine: engine, Endpoint: ep,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(srv.Stop)
		r.eng[dbID] = engine
	}
	return r
}

func (r *rig) attach(n id.NodeID) transport.Endpoint {
	r.t.Helper()
	ep, err := r.net.Attach(n)
	if err != nil {
		r.t.Fatal(err)
	}
	return ep
}

// payLogic adds `amount` to acct/dst on the first database.
func payLogic(amount int64) Logic {
	return LogicFunc(func(ctx context.Context, tx *Tx, req []byte) ([]byte, error) {
		rep, err := tx.Exec(ctx, tx.DBs()[0], msg.Op{Code: msg.OpAdd, Key: "acct/dst", Delta: amount})
		if err != nil {
			return nil, err
		}
		return kv.EncodeInt(rep.Num), nil
	})
}

func seed() []kv.Write {
	return []kv.Write{{Key: "acct/dst", Val: kv.EncodeInt(0)}}
}

func TestUnreliableHappyPath(t *testing.T) {
	r := newRig(t, 1, seed())
	appID := id.AppServer(1)
	srv, err := NewUnreliableServer(UnreliableConfig{
		Self: appID, DataServers: r.dbs, Endpoint: r.attach(appID), Logic: payLogic(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	cl := NewOneShotClient(id.Client(1), appID, r.attach(id.Client(1)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dec, err := cl.Call(ctx, []byte("pay"))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Committed() {
		t.Fatalf("decision = %v", dec)
	}
	if n, _ := r.eng[r.dbs[0]].Store().GetInt("acct/dst"); n != 10 {
		t.Fatalf("dst = %d", n)
	}
}

func TestUnreliablePoisonedBranchAborts(t *testing.T) {
	r := newRig(t, 1, seed())
	appID := id.AppServer(1)
	logic := LogicFunc(func(ctx context.Context, tx *Tx, req []byte) ([]byte, error) {
		if _, err := tx.Exec(ctx, tx.DBs()[0], msg.Op{Code: msg.OpCheckGE, Key: "acct/dst", Delta: 100}); err != nil {
			return nil, err
		}
		return []byte("nope"), nil
	})
	srv, err := NewUnreliableServer(UnreliableConfig{
		Self: appID, DataServers: r.dbs, Endpoint: r.attach(appID), Logic: logic,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	cl := NewOneShotClient(id.Client(1), appID, r.attach(id.Client(1)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dec, err := cl.Call(ctx, []byte("pay"))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Committed() {
		t.Fatal("poisoned branch must abort")
	}
}

func TestTwoPCHappyPathForcesTwoLogWrites(t *testing.T) {
	r := newRig(t, 2, seed())
	appID := id.AppServer(1)
	log := stablestore.New(0)
	srv, err := NewTwoPCServer(TwoPCConfig{
		Self: appID, DataServers: r.dbs, Endpoint: r.attach(appID), Logic: payLogic(5), Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	cl := NewOneShotClient(id.Client(1), appID, r.attach(id.Client(1)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dec, err := cl.Call(ctx, []byte("pay"))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Committed() {
		t.Fatalf("decision = %v", dec)
	}
	if n, _ := r.eng[r.dbs[0]].Store().GetInt("acct/dst"); n != 5 {
		t.Fatalf("dst = %d", n)
	}
	if got := log.ForcedWrites(); got != 2 {
		t.Errorf("coordinator forced %d log writes, want 2 (start + outcome)", got)
	}
	// Both databases decided commit (atomic across the tier).
	for _, dbID := range r.dbs {
		rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
		if o := r.eng[dbID].Outcomes()[rid]; o != msg.OutcomeCommit {
			t.Errorf("%v outcome = %v", dbID, o)
		}
	}
}

// TestTwoPCBlocksOnCoordinatorCrash demonstrates the paper's motivation: the
// coordinator crashes after prepare; the client learns nothing and the
// database sits in doubt, holding its locks.
func TestTwoPCBlocksOnCoordinatorCrash(t *testing.T) {
	r := newRig(t, 1, seed())
	appID := id.AppServer(1)
	var crashed atomic.Bool
	srv, err := NewTwoPCServer(TwoPCConfig{
		Self: appID, DataServers: r.dbs, Endpoint: r.attach(appID), Logic: payLogic(5),
		Log: stablestore.New(0),
		Hooks: &core.Hooks{Crash: func(p core.CrashPoint, rid id.ResultID) {
			if p == core.PointAfterPrepare && crashed.CompareAndSwap(false, true) {
				r.net.Crash(appID)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	cl := NewOneShotClient(id.Client(1), appID, r.attach(id.Client(1)))
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	_, err = cl.Call(ctx, []byte("pay"))
	if !errors.Is(err, ErrOutcomeUnknown) {
		t.Fatalf("err = %v, want ErrOutcomeUnknown (the at-most-once gap)", err)
	}
	if !crashed.Load() {
		t.Fatal("crash hook never fired")
	}
	// The database is blocked in doubt: the prepared branch survives,
	// holding its locks, with nobody to decide it.
	indoubt := r.eng[r.dbs[0]].InDoubt()
	if len(indoubt) != 1 {
		t.Fatalf("in-doubt branches = %v, want exactly one (2PC is blocking)", indoubt)
	}
}

// pbPair wires a primary-backup pair and a core.Client that retries across
// the two, like the paper's adapted scheme.
func pbPair(t *testing.T, r *rig, logic Logic, dets map[id.NodeID]fd.Detector, hooks map[id.NodeID]*core.Hooks) (map[id.NodeID]*PBServer, *core.Client) {
	t.Helper()
	a1, a2 := id.AppServer(1), id.AppServer(2)
	srvs := make(map[id.NodeID]*PBServer, 2)
	for _, pair := range []struct {
		self, peer id.NodeID
		primary    bool
	}{{a1, a2, true}, {a2, a1, false}} {
		det := dets[pair.self]
		if det == nil {
			det = &fd.Perfect{Truth: r.net, Peers: []id.NodeID{pair.peer}}
		}
		srv, err := NewPBServer(PBConfig{
			Self: pair.self, Peer: pair.peer, Primary: pair.primary,
			DataServers: r.dbs, Endpoint: r.attach(pair.self), Logic: logic,
			Detector: det, TakeoverInterval: 5 * time.Millisecond,
			Hooks: hooks[pair.self],
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(srv.Stop)
		srvs[pair.self] = srv
	}
	clEP := r.attach(id.Client(1))
	cl, err := core.NewClient(core.ClientConfig{
		Self: id.Client(1), AppServers: []id.NodeID{a1, a2}, Endpoint: clEP,
		Backoff: 50 * time.Millisecond, Rebroadcast: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return srvs, cl
}

func TestPBHappyPath(t *testing.T) {
	r := newRig(t, 1, seed())
	_, cl := pbPair(t, r, payLogic(10), nil, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := cl.Issue(ctx, []byte("pay"))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := kv.DecodeInt(res); n != 10 {
		t.Fatalf("result = %v", res)
	}
	if n, _ := r.eng[r.dbs[0]].Store().GetInt("acct/dst"); n != 10 {
		t.Fatalf("dst = %d", n)
	}
}

// TestPBFailoverWithPerfectDetector: primary crashes after recording the
// outcome at the backup; the backup finishes the commit and answers the
// client — exactly-once, because the detector is perfect.
func TestPBFailoverWithPerfectDetector(t *testing.T) {
	r := newRig(t, 1, seed())
	var crashed atomic.Bool
	hooks := map[id.NodeID]*core.Hooks{
		id.AppServer(1): {Crash: func(p core.CrashPoint, rid id.ResultID) {
			if p == core.PointAfterRegD && rid.Try == 1 && crashed.CompareAndSwap(false, true) {
				r.net.Crash(id.AppServer(1))
			}
		}},
	}
	_, cl := pbPair(t, r, payLogic(10), nil, hooks)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := cl.Issue(ctx, []byte("pay"))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := kv.DecodeInt(res); n != 10 {
		t.Fatalf("result = %v", res)
	}
	if !crashed.Load() {
		t.Fatal("crash hook never fired")
	}
	if n, _ := r.eng[r.dbs[0]].Store().GetInt("acct/dst"); n != 10 {
		t.Fatalf("dst = %d, want exactly-once", n)
	}
}

// TestPBFalseSuspicionCausesInconsistency reproduces the paper's warning:
// with an unreliable detector, the backup aborts a try the (live) primary
// goes on to believe committed. The primary's recorded outcome and the
// database's recorded outcome disagree — an inconsistency impossible in the
// wo-register-based protocol (compare TestFalseSuspicionIsSafe in the
// cluster package).
func TestPBFalseSuspicionCausesInconsistency(t *testing.T) {
	r := newRig(t, 1, seed())
	backupDet := fd.NewScripted() // lies on demand
	var once atomic.Bool
	hooks := map[id.NodeID]*core.Hooks{
		id.AppServer(1): {Crash: func(p core.CrashPoint, rid id.ResultID) {
			if p == core.PointAfterPrepare && once.CompareAndSwap(false, true) {
				// Primary is alive, prepared (vote yes everywhere), but has
				// not recorded the outcome yet. Tell the backup the primary
				// is dead and give it time to "clean up".
				backupDet.Set(id.AppServer(1), true)
				time.Sleep(150 * time.Millisecond)
			}
		}},
	}
	dets := map[id.NodeID]fd.Detector{id.AppServer(2): backupDet}
	srvs, cl := pbPair(t, r, payLogic(10), dets, hooks)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := cl.Issue(ctx, []byte("pay")); err != nil {
		t.Fatal(err)
	}

	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	var primaryDec msg.Decision
	var ok bool
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if primaryDec, ok = srvs[id.AppServer(1)].RecordedOutcome(rid); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ok {
		t.Fatal("primary never recorded an outcome for try 1")
	}
	dbOutcome := r.eng[r.dbs[0]].Outcomes()[rid]
	if primaryDec.Outcome == msg.OutcomeCommit && dbOutcome == msg.OutcomeAbort {
		// The demonstrated inconsistency: the primary told (or would tell)
		// the client "commit" for a try the database aborted.
		return
	}
	t.Fatalf("expected the false-suspicion inconsistency; primary=%v db=%v",
		primaryDec.Outcome, dbOutcome)
}
