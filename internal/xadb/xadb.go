// Package xadb implements the database-server engine of the paper's model: a
// stateful, autonomous resource exposing the transaction-commitment subset of
// the XA interface — vote() (XA prepare) and decide() (XA commit/abort) — plus
// the data operations the business logic runs inside a transaction branch.
//
// The engine honours the paper's decide() contract exactly:
//
//	(a) if the input value is abort, the returned value is abort;
//	(b) if the server voted yes for the result and the input is commit, the
//	    returned value is commit.
//
// Durability model: a yes vote forces a Prepared record (with the branch's
// write-set) to the WAL, so in-doubt branches survive crashes and a later
// Decide(commit) is honoured across recoveries — the property the paper's
// "good database servers" assumption leans on. Commits force a Committed
// record; aborts are presumed (lazy record).
//
// Each recovery bumps a persisted incarnation number. Application servers pin
// the incarnation they first executed against and treat a mismatch as a
// broken database connection (the paper's Section 5 failure-detection scheme
// between the middle tier and the databases), ensuring a crash that loses
// unprepared work aborts the try instead of committing a hole.
package xadb

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/lockmgr"
	"etx/internal/msg"
	"etx/internal/spin"
	"etx/internal/stablestore"
	"etx/internal/wal"
)

// incarnationKey is the stablestore key holding the incarnation counter.
const incarnationKey = "xadb/incarnation"

// Config parameterizes an Engine.
type Config struct {
	// Self identifies the database server (used in errors only).
	Self id.NodeID
	// LockTimeout bounds each lock wait; expiry poisons the branch
	// (deadlock resolution by abort-and-retry). Defaults to 250ms. In queue
	// mode the same bound applies to vote-gate waits on undecided chain
	// predecessors.
	LockTimeout time.Duration
	// QueueExec switches the engine to queue-oriented deterministic
	// execution: operations run speculatively against per-key chains without
	// any lock-manager acquisition, and commitment is gated on chain
	// predecessors instead (see spec.go). The caller (the data server's
	// planner) must serialize same-key operations. Off — the default —
	// reproduces the paper-exact strict-2PL discipline.
	QueueExec bool
	// Replicate, when set, observes every write-ahead-log record immediately
	// after its append, under the same branch serialization as the append
	// itself — so for any two records whose order matters (a branch's
	// prepared record before its commit record, conflicting commits ordered
	// by lock or chain hand-over), the hook fires in log order, and the hook
	// returns before the effect the record describes can be voted or
	// acknowledged. The data-tier replication streamer hangs off this; nil —
	// the default — is the paper-exact single-server behaviour.
	Replicate func(rec wal.Record)
}

// BranchStatus is the lifecycle state of a transaction branch.
type BranchStatus uint8

// Branch states.
const (
	StatusActive BranchStatus = iota + 1
	StatusPrepared
	StatusCommitted
	StatusAborted
)

// String returns the status mnemonic.
func (s BranchStatus) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusPrepared:
		return "prepared"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Engine is one database server's transactional core.
type Engine struct {
	cfg   Config
	st    *stablestore.Store
	log   *wal.Log
	store *kv.Store
	locks *lockmgr.Manager
	spec  *spec // speculative chains; nil unless Config.QueueExec
	inc   uint64

	// appendSeq numbers deferred (unforced) prepared/commit appends and
	// syncedSeq is the highest such append known durable: every vote/decide
	// entry point runs syncIfBehind before returning, so no vote or ack ever
	// leaves the server resting on an unsynced record — even when a
	// concurrent batch's status change is observed through a fast path, and
	// even when that batch's own sync is still in flight.
	appendSeq atomic.Int64
	syncedSeq atomic.Int64

	mu       sync.Mutex
	branches map[id.ResultID]*branch
	outcomes map[id.ResultID]msg.Outcome
}

type branch struct {
	mu       sync.Mutex
	rid      id.ResultID
	status   BranchStatus
	poisoned bool
	reason   string
	writes   []kv.Write
	wIdx     map[string]int // key -> index into writes (read-your-writes)
}

// Open starts an engine over st, running crash recovery: the store image is
// rebuilt from the WAL, in-doubt (prepared, undecided) branches are restored
// with their locks re-acquired, and the incarnation counter is bumped.
func Open(st *stablestore.Store, cfg Config) (*Engine, error) {
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 250 * time.Millisecond
	}
	e := &Engine{
		cfg:      cfg,
		st:       st,
		log:      wal.New(st),
		store:    kv.New(),
		locks:    lockmgr.New(),
		branches: make(map[id.ResultID]*branch),
		outcomes: make(map[id.ResultID]msg.Outcome),
	}
	if cfg.QueueExec {
		e.spec = newSpec()
	}

	// Incarnation: read, bump, persist.
	if raw, ok := st.Get(incarnationKey); ok && len(raw) == 8 {
		e.inc = binary.BigEndian.Uint64(raw)
	}
	e.inc++
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], e.inc)
	st.Put(incarnationKey, buf[:])

	// Replay the WAL.
	rv, err := e.log.Scan()
	if err != nil {
		return nil, fmt.Errorf("xadb: recovery scan: %w", err)
	}
	e.store.Apply(rv.Image)
	for rid := range rv.Committed {
		e.outcomes[rid] = msg.OutcomeCommit
	}
	for rid := range rv.Aborted {
		e.outcomes[rid] = msg.OutcomeAbort
	}
	// In-doubt branches are restored in deterministic (sorted) order. Lock
	// mode re-acquires their locks; queue mode seeds their write-sets into
	// the speculative chains instead, so post-recovery accessors order
	// behind them and gate on their eventual decide.
	inDoubt := make([]id.ResultID, 0, len(rv.InDoubt))
	for rid := range rv.InDoubt {
		inDoubt = append(inDoubt, rid)
	}
	sort.Slice(inDoubt, func(i, j int) bool { return inDoubt[i].Less(inDoubt[j]) })
	for _, rid := range inDoubt {
		ws := rv.InDoubt[rid]
		b := &branch{rid: rid, status: StatusPrepared, writes: ws, wIdx: make(map[string]int, len(ws))}
		for i, w := range ws {
			b.wIdx[w.Key] = i
			if e.spec != nil {
				continue
			}
			// Locks are re-acquired on a fresh lock table: cannot block.
			if err := e.locks.Acquire(context.Background(), rid, w.Key, lockmgr.Exclusive); err != nil {
				return nil, fmt.Errorf("xadb: relock in-doubt branch %s: %w", rid, err)
			}
		}
		if e.spec != nil {
			e.spec.seed(rid, ws)
		}
		e.branches[rid] = b
	}
	return e, nil
}

// append writes rec to the WAL and hands it to the replication hook. Call
// sites hold the same locks the record's ordering constraints come from
// (b.mu for branch records), so the hook observes constrained records in log
// order; see Config.Replicate.
func (e *Engine) append(rec wal.Record, force bool) {
	e.log.Append(rec, force)
	if e.cfg.Replicate != nil {
		e.cfg.Replicate(rec)
	}
}

// Incarnation returns this engine's incarnation (1 on first boot, +1 per
// recovery).
func (e *Engine) Incarnation() uint64 { return e.inc }

// SetIncarnationFloor persists inc as a lower bound on the incarnation
// counter of st, if it exceeds the stored one. A backup applies the
// primary's incarnation (carried on every replicated record) through this,
// so the engine a promotion opens always runs under a strictly higher
// incarnation than any the old primary served — the application tier's
// incarnation pinning then aborts every try whose unprepared work the
// asynchronous stream may not have carried, exactly as it would across a
// single-server restart.
func SetIncarnationFloor(st *stablestore.Store, inc uint64) {
	if raw, ok := st.Get(incarnationKey); ok && len(raw) == 8 {
		if binary.BigEndian.Uint64(raw) >= inc {
			return
		}
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], inc)
	st.Put(incarnationKey, buf[:])
}

// Store exposes the live data image (read-only use: tests, seeding checks).
func (e *Engine) Store() *kv.Store { return e.store }

// StableStore exposes the underlying stable storage (metrics).
func (e *Engine) StableStore() *stablestore.Store { return e.st }

// Seed atomically installs initial data as a committed snapshot, bypassing
// transaction machinery (initial database population).
func (e *Engine) Seed(ws []kv.Write) {
	e.append(wal.Record{Type: wal.RecSnapshot, Writes: e.seedImage(ws)}, true)
	e.store.Apply(ws)
}

// seedImage merges the current image with ws so repeated seeding keeps the
// snapshot record self-contained.
func (e *Engine) seedImage(ws []kv.Write) []kv.Write {
	img := e.store.Snapshot()
	img = append(img, ws...)
	return img
}

// InDoubt returns the RIDs of branches that are prepared but undecided.
func (e *Engine) InDoubt() []id.ResultID {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []id.ResultID
	for rid, b := range e.branches {
		b.mu.Lock()
		if b.status == StatusPrepared {
			out = append(out, rid)
		}
		b.mu.Unlock()
	}
	return out
}

// BranchStatus reports the state of a branch: recorded outcome first, then
// live branch state; ok is false for unknown branches.
func (e *Engine) BranchStatus(rid id.ResultID) (BranchStatus, bool) {
	e.mu.Lock()
	if o, ok := e.outcomes[rid]; ok {
		e.mu.Unlock()
		if o == msg.OutcomeCommit {
			return StatusCommitted, true
		}
		return StatusAborted, true
	}
	b, ok := e.branches[rid]
	e.mu.Unlock()
	if !ok {
		return 0, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.status, true
}

// getBranch returns the live branch for rid, creating it if create is set and
// no outcome has been recorded. The bool reports whether an outcome already
// exists (branch finished).
func (e *Engine) getBranch(rid id.ResultID, create bool) (*branch, msg.Outcome, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if o, done := e.outcomes[rid]; done {
		return nil, o, true
	}
	b, ok := e.branches[rid]
	if !ok && create {
		b = &branch{rid: rid, status: StatusActive, wIdx: make(map[string]int)}
		e.branches[rid] = b
	}
	return b, 0, false
}

// Exec runs one data operation inside the branch of rid, creating the branch
// on first use. Lock waits are bounded by Config.LockTimeout; a timeout
// poisons the branch so it will vote no.
func (e *Engine) Exec(ctx context.Context, rid id.ResultID, op msg.Op) msg.OpResult {
	if op.Code == msg.OpSnapRead {
		// Read-only fast path: the last committed value, answered without
		// locks and without creating (or enlisting) a branch — the try never
		// prepares this server for a snapshot read, so a branch here would
		// leak. Works identically in both execution modes.
		return e.SnapRead(op.Key)
	}
	b, outcome, done := e.getBranch(rid, true)
	if done {
		return msg.OpResult{OK: false, Err: fmt.Sprintf("branch already %s", outcome)}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.status {
	case StatusPrepared:
		return msg.OpResult{OK: false, Err: "branch already prepared"}
	case StatusCommitted, StatusAborted:
		return msg.OpResult{OK: false, Err: fmt.Sprintf("branch already %s", b.status)}
	}

	if e.spec != nil {
		// Queue mode: no lock manager. The status check above and the chain
		// bookkeeping both run under b.mu, so a racing vote either sees the
		// chain membership this exec records or this exec sees the prepared
		// status and refuses.
		return e.execSpec(b, op)
	}

	lockCtx, cancel := context.WithTimeout(ctx, e.cfg.LockTimeout)
	defer cancel()

	acquire := func(key string, mode lockmgr.Mode) bool {
		if err := e.locks.Acquire(lockCtx, rid, key, mode); err != nil {
			b.poisoned = true
			b.reason = err.Error()
			return false
		}
		return true
	}

	switch op.Code {
	case msg.OpGet:
		if !acquire(op.Key, lockmgr.Shared) {
			return msg.OpResult{OK: false, Err: b.reason}
		}
		val, num := b.read(e.store, op.Key)
		return msg.OpResult{Val: val, Num: num, OK: true}

	case msg.OpPut:
		if !acquire(op.Key, lockmgr.Exclusive) {
			return msg.OpResult{OK: false, Err: b.reason}
		}
		b.write(op.Key, op.Val)
		return msg.OpResult{OK: true}

	case msg.OpAdd:
		if !acquire(op.Key, lockmgr.Exclusive) {
			return msg.OpResult{OK: false, Err: b.reason}
		}
		_, cur := b.read(e.store, op.Key)
		next := cur + op.Delta
		b.write(op.Key, kv.EncodeInt(next))
		return msg.OpResult{Num: next, OK: true}

	case msg.OpCheckGE:
		if !acquire(op.Key, lockmgr.Shared) {
			return msg.OpResult{OK: false, Err: b.reason}
		}
		_, cur := b.read(e.store, op.Key)
		if cur < op.Delta {
			b.poisoned = true
			b.reason = fmt.Sprintf("check failed: %s=%d < %d", op.Key, cur, op.Delta)
			return msg.OpResult{Num: cur, OK: false, Err: b.reason}
		}
		return msg.OpResult{Num: cur, OK: true}

	case msg.OpSleep:
		// Simulated data-manipulation work (the cost model's "SQL" row).
		// spin.Sleep keeps scaled-down costs precise; cancellation is not
		// needed because the duration is bounded by the cost model.
		//etxlint:allow lockheld — models SQL row work under the branch's row locks; holding them for the work's duration is the cost model
		spin.Sleep(time.Duration(op.Delta))
		return msg.OpResult{OK: true}

	default:
		return msg.OpResult{OK: false, Err: fmt.Sprintf("unknown op %d", op.Code)}
	}
}

// read returns the branch-visible value of key: its own pending write if any,
// else the committed store value. num is the integer interpretation (0 when
// absent or non-integer).
func (b *branch) read(store *kv.Store, key string) (val []byte, num int64) {
	if i, ok := b.wIdx[key]; ok {
		val = b.writes[i].Val
	} else if v, ok := store.Get(key); ok {
		val = v
	}
	if len(val) == 8 {
		if n, err := kv.DecodeInt(val); err == nil {
			num = n
		}
	}
	return val, num
}

func (b *branch) write(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	if i, ok := b.wIdx[key]; ok {
		b.writes[i].Val = cp
		return
	}
	b.wIdx[key] = len(b.writes)
	b.writes = append(b.writes, kv.Write{Key: key, Val: cp})
}

// Vote implements the paper's vote() primitive (XA prepare). A yes vote
// forces the branch's write-set to the WAL first. Voting on an unknown
// branch prepares an empty branch and votes yes (this server was simply not
// touched by the try). Poisoned branches vote no and abort immediately. In
// queue mode the vote additionally waits for every chain predecessor to
// decide, bounded by the lock-timeout (expiry poisons and votes no).
func (e *Engine) Vote(rid id.ResultID) msg.Vote {
	v := e.voteWait(rid, false)
	e.syncIfBehind()
	return v
}

// voteWait runs vote, waiting out queue-mode vote gates. The total wait is
// bounded by Config.LockTimeout: expiry poisons the branch — the vote-gate
// analogue of a lock-wait timeout, resolving cross-shard chain-order
// inversions (distributed deadlock) by mutual abort — and the next pass
// votes no.
func (e *Engine) voteWait(rid id.ResultID, deferSync bool) msg.Vote {
	var expire <-chan time.Time
	for {
		v, ok, gate := e.vote(rid, deferSync, false)
		if ok {
			return v
		}
		if expire == nil {
			t := time.NewTimer(e.cfg.LockTimeout)
			defer t.Stop()
			expire = t.C
		}
		select {
		case <-gate:
		case <-expire:
			e.Poison(rid, "spec: vote gate timed out waiting for chain predecessors")
		}
	}
}

// VoteBatch runs Vote for every rid, sharing one forced log write across
// every yes vote of the batch (group commit at the engine level): the
// prepared records are appended unforced and a single Sync makes them all
// durable before any vote is returned — the callers' votes may only leave
// the server after VoteBatch returns.
func (e *Engine) VoteBatch(rids []id.ResultID) []msg.Vote {
	_, vs := e.DecideAndVoteBatch(nil, rids)
	return vs
}

// syncIfBehind pays one (combined) device force iff some deferred record may
// still be unsynced. The target is read before the force: every append
// numbered up to it completed before the force started and is therefore
// covered; appends racing in later carry higher numbers and their own entry
// points sync them. syncedSeq only advances after a *completed* force, so an
// observer never skips on the strength of a sync still in flight.
func (e *Engine) syncIfBehind() {
	target := e.appendSeq.Load()
	if e.syncedSeq.Load() >= target {
		return
	}
	e.st.Sync()
	for {
		old := e.syncedSeq.Load()
		if old >= target || e.syncedSeq.CompareAndSwap(old, target) {
			return
		}
	}
}

// vote is the shared Vote implementation. With deferSync a newly prepared
// record is appended unforced and numbered; the caller must run
// syncIfBehind before releasing any vote. With tryLock a branch whose mutex
// is busy (typically an Exec waiting out a data-lock acquisition) is not
// waited for: the call returns ok=false with a nil gate and the caller
// retries later. In queue mode a branch whose chain predecessors are still
// undecided returns ok=false with a non-nil gate channel: the caller waits
// on it (it is closed at the next predecessor decide) and re-votes.
func (e *Engine) vote(rid id.ResultID, deferSync, tryLock bool) (msg.Vote, bool, <-chan struct{}) {
	b, outcome, done := e.getBranch(rid, true)
	if done {
		if outcome == msg.OutcomeCommit {
			return msg.VoteYes, true, nil
		}
		return msg.VoteNo, true, nil
	}
	if tryLock {
		if !b.mu.TryLock() {
			return 0, false, nil
		}
	} else {
		b.mu.Lock()
	}
	defer b.mu.Unlock()
	switch b.status {
	case StatusPrepared, StatusCommitted:
		return msg.VoteYes, true, nil
	case StatusAborted:
		return msg.VoteNo, true, nil
	}
	if b.poisoned {
		e.abortLocked(b)
		return msg.VoteNo, true, nil
	}
	if e.spec != nil {
		// The vote gate: yes only once every chain predecessor has decided,
		// so decide order extends chain order and an aborted predecessor's
		// speculative values never reach the store through a successor.
		gate, ready, cascade := e.spec.gate(rid)
		if cascade != "" {
			b.poisoned = true
			b.reason = cascade
			e.abortLocked(b)
			return msg.VoteNo, true, nil
		}
		if !ready {
			return 0, false, gate
		}
	}
	e.append(wal.Record{Type: wal.RecPrepared, RID: rid, Writes: b.writes}, !deferSync)
	if deferSync {
		// Numbered inside b.mu, before the status flips: anyone who can
		// observe the prepared status observes the pending append too.
		e.appendSeq.Add(1)
	}
	b.status = StatusPrepared
	return msg.VoteYes, true, nil
}

// Decide implements the paper's decide() primitive. It is idempotent: a
// branch already decided returns its recorded outcome. Decide(commit) on a
// branch that never voted yes returns abort, which the decide() contract
// permits and safety requires.
func (e *Engine) Decide(rid id.ResultID, outcome msg.Outcome) msg.Outcome {
	o, _ := e.decide(rid, outcome, false, false)
	e.syncIfBehind()
	return o
}

// DecideReq is one element of a DecideBatch: the requested outcome for one
// branch.
type DecideReq struct {
	RID id.ResultID
	O   msg.Outcome
}

// DecideBatch runs Decide for every request, sharing one forced log write
// across every commit record of the batch. Outcomes become visible to
// concurrent readers before the shared force completes, which is safe
// because the log is totally ordered — any later force covers these records,
// every entry point syncs-if-behind before returning — and because the
// acknowledgements that make an outcome externally meaningful may only be
// sent after DecideBatch returns.
func (e *Engine) DecideBatch(reqs []DecideReq) []msg.Outcome {
	outs, _ := e.DecideAndVoteBatch(reqs, nil)
	return outs
}

// DecideAndVoteBatch serves one mailbox drain in a single durability unit:
// the decides first (so an abort releases locks a vote in the same drain may
// be queued behind), then the votes, with one shared device force covering
// every deferred record of both groups — a mixed drain pays one fsync, not
// two. No outcome or vote may leave the server before the call returns.
//
// Each group runs a try-lock pass first: a branch whose mutex is busy —
// typically an Exec holding it while it waits out a data-lock acquisition —
// is deferred to a blocking second pass instead of stalling the whole batch
// behind it. The per-message-goroutine property this preserves: a
// Decide(abort) later in the drain that would release the contended lock is
// served before anything waits on the Exec-held branch.
func (e *Engine) DecideAndVoteBatch(decides []DecideReq, votes []id.ResultID) ([]msg.Outcome, []msg.Vote) {
	outs, vs, gated := e.decideAndVoteBatch(decides, votes)
	// Queue-mode vote gates are waited out inline (bounded by the
	// lock-timeout), preserving this entry point's votes-are-final contract.
	for _, i := range gated {
		vs[i] = e.voteWait(votes[i], true)
	}
	e.syncIfBehind()
	return outs, vs
}

// DecideAndVoteBatchSpec is the data server's drain entry point: like
// DecideAndVoteBatch, but queue-mode votes gated on undecided chain
// predecessors are returned as indices into votes (gated) instead of being
// waited for inline, so one gated vote cannot stall the whole drain's
// replies. Gated entries of the vote slice are zero and must not be sent;
// the caller resolves each with a later Vote call (which waits out the gate
// and syncs itself). In lock mode gated is always empty.
func (e *Engine) DecideAndVoteBatchSpec(decides []DecideReq, votes []id.ResultID) ([]msg.Outcome, []msg.Vote, []int) {
	outs, vs, gated := e.decideAndVoteBatch(decides, votes)
	e.syncIfBehind()
	return outs, vs, gated
}

func (e *Engine) decideAndVoteBatch(decides []DecideReq, votes []id.ResultID) (outs []msg.Outcome, vs []msg.Vote, gated []int) {
	outs = make([]msg.Outcome, len(decides))
	vs = make([]msg.Vote, len(votes))
	var retryD, retryV []int
	for i, req := range decides {
		if o, ok := e.decide(req.RID, req.O, true, true); ok {
			outs[i] = o
		} else {
			retryD = append(retryD, i)
		}
	}
	for i, rid := range votes {
		v, ok, gate := e.vote(rid, true, true)
		switch {
		case ok:
			vs[i] = v
		case gate != nil:
			gated = append(gated, i)
		default:
			retryV = append(retryV, i)
		}
	}
	for _, i := range retryD {
		outs[i], _ = e.decide(decides[i].RID, decides[i].O, true, false)
	}
	for _, i := range retryV {
		v, ok, gate := e.vote(votes[i], true, false)
		if ok {
			vs[i] = v
		} else if gate != nil {
			gated = append(gated, i)
		}
	}
	return outs, vs, gated
}

// decide is the shared Decide implementation. With deferSync commit records
// are appended unforced and numbered; the caller must run syncIfBehind
// before acknowledging any outcome. With tryLock a busy branch mutex makes
// the call return ok=false for the caller to retry (see DecideAndVoteBatch).
func (e *Engine) decide(rid id.ResultID, outcome msg.Outcome, deferSync, tryLock bool) (msg.Outcome, bool) {
	b, prev, done := e.getBranch(rid, false)
	if done {
		return prev, true
	}
	if b == nil {
		// Unknown branch. Abort is trivially recordable; commit of a branch
		// this server never prepared applies nothing (the protocol's
		// incarnation checks ensure no data was lost). The record is
		// appended and numbered before the outcome becomes readable, so a
		// concurrent decide observing it syncs first.
		if outcome == msg.OutcomeAbort {
			e.append(wal.Record{Type: wal.RecAborted, RID: rid}, false)
			e.recordOutcome(rid, outcome)
			return outcome, true
		}
		e.append(wal.Record{Type: wal.RecCommitted, RID: rid}, !deferSync)
		if deferSync {
			e.appendSeq.Add(1)
		}
		e.recordOutcome(rid, outcome)
		return outcome, true
	}
	if tryLock {
		if !b.mu.TryLock() {
			return 0, false
		}
	} else {
		b.mu.Lock()
	}
	defer b.mu.Unlock()
	switch b.status {
	case StatusCommitted:
		return msg.OutcomeCommit, true
	case StatusAborted:
		return msg.OutcomeAbort, true
	}
	if outcome == msg.OutcomeAbort || b.status != StatusPrepared {
		// (a) abort in -> abort out; also commit of an unprepared branch
		// degrades to abort (no yes vote was ever given).
		e.abortLocked(b)
		return msg.OutcomeAbort, true
	}
	// Prepared + commit: record the commit, apply the write-set. The append
	// is numbered inside b.mu before the status flips and the branch
	// finishes, so any observer of the committed state syncs before acking.
	e.append(wal.Record{Type: wal.RecCommitted, RID: rid}, !deferSync)
	if deferSync {
		e.appendSeq.Add(1)
	}
	e.store.Apply(b.writes)
	b.status = StatusCommitted
	e.locks.ReleaseAll(rid)
	e.finishBranch(b, msg.OutcomeCommit)
	return msg.OutcomeCommit, true
}

// CommitDirect is single-phase commit for the unreliable baseline protocol
// (Figure 7a): no vote, no prepared record — just apply and force the commit
// record, like auto-commit against a single database. Poisoned branches
// abort. Like every other entry point it syncs-if-behind, so a fast-path hit
// on a concurrently batched outcome never acks an unsynced record.
func (e *Engine) CommitDirect(rid id.ResultID) msg.Outcome {
	defer e.syncIfBehind()
	b, prev, done := e.getBranch(rid, false)
	if done {
		return prev
	}
	if b == nil {
		e.recordOutcome(rid, msg.OutcomeCommit)
		e.append(wal.Record{Type: wal.RecCommitted, RID: rid}, true)
		return msg.OutcomeCommit
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned || b.status != StatusActive {
		e.abortLocked(b)
		return msg.OutcomeAbort
	}
	// Single-phase: the write-set rides inside a prepared+committed pair so
	// recovery replays it.
	e.append(wal.Record{Type: wal.RecPrepared, RID: rid, Writes: b.writes}, false)
	e.append(wal.Record{Type: wal.RecCommitted, RID: rid}, true)
	e.store.Apply(b.writes)
	b.status = StatusCommitted
	e.locks.ReleaseAll(rid)
	e.finishBranch(b, msg.OutcomeCommit)
	return msg.OutcomeCommit
}

// abortLocked finishes b as aborted: locks released, lazy abort record.
// Caller holds b.mu.
func (e *Engine) abortLocked(b *branch) {
	b.status = StatusAborted
	e.append(wal.Record{Type: wal.RecAborted, RID: b.rid}, false)
	e.locks.ReleaseAll(b.rid)
	e.finishBranch(b, msg.OutcomeAbort)
}

// finishBranch records the outcome and drops the live branch. Caller holds
// b.mu. In queue mode the branch leaves its chains here, releasing (or, on
// abort, cascading into) its successors' vote gates.
func (e *Engine) finishBranch(b *branch, o msg.Outcome) {
	if e.spec != nil {
		e.spec.finish(b.rid, o == msg.OutcomeAbort)
	}
	e.mu.Lock()
	e.outcomes[b.rid] = o
	delete(e.branches, b.rid)
	e.mu.Unlock()
}

func (e *Engine) recordOutcome(rid id.ResultID, o msg.Outcome) {
	e.mu.Lock()
	e.outcomes[rid] = o
	e.mu.Unlock()
}

// Outcomes returns a snapshot of every decided branch and its outcome
// (correctness oracles: properties A.2 and A.3 are asserted over these).
func (e *Engine) Outcomes() map[id.ResultID]msg.Outcome {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[id.ResultID]msg.Outcome, len(e.outcomes))
	for rid, o := range e.outcomes {
		out[rid] = o
	}
	return out
}

// AbortExpired aborts every active (unprepared) branch older than the given
// status — exposed for future lock-reaping policies; the protocol itself
// aborts stale tries through the cleaning thread, so this is a safety net
// used by tests.
func (e *Engine) AbortActiveBranches() int {
	e.mu.Lock()
	var stale []*branch
	for _, b := range e.branches {
		stale = append(stale, b)
	}
	e.mu.Unlock()
	n := 0
	for _, b := range stale {
		b.mu.Lock()
		if b.status == StatusActive {
			e.abortLocked(b)
			n++
		}
		b.mu.Unlock()
	}
	return n
}
