// Queue-oriented deterministic execution (Config.QueueExec): the engine
// retires the lock manager from the hot path. The data server plans each
// drained mailbox batch into per-key FIFO queues and executes every queue
// serially (disjoint keys in parallel), so two operations on the same key
// can never race — the per-key chain below replaces the lock table as the
// serialization artifact.
//
// Execution is speculative, in the lineage of queue-oriented deterministic
// processors (Q-Store/QueCC): an operation never waits for a conflicting
// branch to decide. It reads the pending value of the last writer in the
// key's chain (or the committed store when the chain holds no write) and
// appends itself to the chain. Correctness is enforced at commitment time
// instead of execution time:
//
//   - a branch may vote yes only once every chain predecessor has decided
//     (the vote gate), so decide order extends chain order and write-sets
//     apply to the store in serialization order;
//   - if a predecessor a branch read from aborts, the branch is poisoned and
//     votes no (the speculative cascade) — the try aborts and the client's
//     retry machinery re-executes it, so no delivered result ever rests on
//     an aborted value;
//   - a branch that writes a key after a later accessor joined the chain is
//     poisoned (chain order is the serialization order; rewriting history
//     is refused rather than reordered).
//
// Vote-gate waits are bounded by Config.LockTimeout, which resolves
// cross-shard chain-order inversions (the distributed form of deadlock) by
// mutual timeout-abort, exactly like lock mode resolves lock cycles.
package xadb

import (
	"fmt"
	"sync"
	"time"

	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/lockmgr"
	"etx/internal/metrics"
	"etx/internal/msg"
	"etx/internal/spin"
)

// spec is the engine's speculative-chain state: one FIFO chain of undecided
// accessors per key. All fields are guarded by mu; the engine always
// acquires a branch mutex before mu, never the reverse.
type spec struct {
	mu     sync.Mutex
	chains map[string][]*specNode
	nodes  map[id.ResultID]*specNode

	execs    metrics.Counter // operations executed without a lock acquisition
	deferred metrics.Counter // vote gates that had to wait on predecessors
	cascades metrics.Counter // branches poisoned by an aborted read-from pred
	rewrites metrics.Counter // branches poisoned for writing behind the tail
}

// specNode is one undecided branch's membership in the chains it touched.
type specNode struct {
	rid  id.ResultID
	keys map[string]bool   // chains this node sits in
	vals map[string][]byte // pending write per key (absent = read-only entry)

	pending  map[id.ResultID]bool // undecided chain predecessors
	readFrom map[id.ResultID]bool // predecessors whose pending values we read
	succs    []*specNode          // nodes that recorded us as a predecessor

	cascade string          // non-empty: a read-from predecessor aborted
	waiters []chan struct{} // one-shot gate waiters, closed on any progress
}

// SpecStats is a snapshot of the speculative executor's counters.
type SpecStats struct {
	Execs    uint64 // operations executed lock-free
	Deferred uint64 // votes that waited on chain predecessors
	Cascades uint64 // poisons cascaded from aborted predecessors
	Rewrites uint64 // poisons from writes behind the chain tail
}

// Stats snapshots the counters.
func (s *spec) Stats() SpecStats {
	return SpecStats{
		Execs:    s.execs.Load(),
		Deferred: s.deferred.Load(),
		Cascades: s.cascades.Load(),
		Rewrites: s.rewrites.Load(),
	}
}

// String renders the counters for liveness dumps.
func (s SpecStats) String() string {
	return fmt.Sprintf("spec{execs=%d deferred=%d cascades=%d rewrites=%d}",
		s.Execs, s.Deferred, s.Cascades, s.Rewrites)
}

func newSpec() *spec {
	return &spec{
		chains: make(map[string][]*specNode),
		nodes:  make(map[id.ResultID]*specNode),
	}
}

// join returns rid's node and its position in key's chain, appending a fresh
// tail entry — with dependencies on every current chain member — on first
// access. Caller holds s.mu.
func (s *spec) join(rid id.ResultID, key string) (*specNode, int) {
	n := s.nodes[rid]
	if n == nil {
		n = &specNode{
			rid:      rid,
			keys:     make(map[string]bool),
			vals:     make(map[string][]byte),
			pending:  make(map[id.ResultID]bool),
			readFrom: make(map[id.ResultID]bool),
		}
		s.nodes[rid] = n
	}
	chain := s.chains[key]
	if n.keys[key] {
		for i, m := range chain {
			if m == n {
				return n, i
			}
		}
	}
	for _, p := range chain {
		if !n.pending[p.rid] {
			n.pending[p.rid] = true
			p.succs = append(p.succs, n)
		}
	}
	n.keys[key] = true
	s.chains[key] = append(chain, n)
	return n, len(chain)
}

// read resolves the speculative value of key as seen from rid's chain
// position: the nearest preceding pending write. fromPred is false when no
// predecessor wrote the key, in which case the caller reads the committed
// store.
func (s *spec) read(rid id.ResultID, key string) (val []byte, fromPred bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, pos := s.join(rid, key)
	chain := s.chains[key]
	for i := pos - 1; i >= 0; i-- {
		if v, ok := chain[i].vals[key]; ok {
			n.readFrom[chain[i].rid] = true
			return v, true
		}
	}
	return nil, false
}

// write records rid's pending write of key at its chain position. It fails
// (non-empty reason) when a later accessor has already joined the chain:
// their reads resolved against the chain as it was, so rewriting behind them
// would fork the serialization order.
func (s *spec) write(rid id.ResultID, key string, val []byte) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, pos := s.join(rid, key)
	if pos != len(s.chains[key])-1 {
		s.rewrites.Inc()
		return fmt.Sprintf("spec: write of %q behind the chain tail (position %d of %d)",
			key, pos, len(s.chains[key]))
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	n.vals[key] = cp
	return ""
}

// seed installs a recovered in-doubt branch's write-set as chain state, so
// post-recovery accessors order behind it and gate on its eventual decide —
// the queue-mode replacement for re-acquiring its locks.
func (s *spec) seed(rid id.ResultID, ws []kv.Write) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range ws {
		n, _ := s.join(rid, w.Key)
		cp := make([]byte, len(w.Val))
		copy(cp, w.Val)
		n.vals[w.Key] = cp
	}
}

// gate reports whether rid may vote: ready when every chain predecessor has
// decided (or rid never touched a chain). A non-empty cascade reason means a
// read-from predecessor aborted — the caller must poison the branch and vote
// no. When not ready, the returned channel is closed on the next predecessor
// decide (or cascade); the caller re-checks after each wake.
func (s *spec) gate(rid id.ResultID) (wait <-chan struct{}, ready bool, cascade string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[rid]
	if n == nil {
		return nil, true, ""
	}
	if n.cascade != "" {
		return nil, true, n.cascade
	}
	if len(n.pending) == 0 {
		return nil, true, ""
	}
	ch := make(chan struct{})
	n.waiters = append(n.waiters, ch)
	s.deferred.Inc()
	return ch, false, ""
}

// finish removes rid from every chain it joined and releases its
// successors' gates. An abort poisons (cascades to) every successor that
// read rid's pending values. Caller holds the branch mutex (never s.mu).
func (s *spec) finish(rid id.ResultID, aborted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[rid]
	if n == nil {
		return
	}
	delete(s.nodes, rid)
	for key := range n.keys {
		chain := s.chains[key]
		for i, m := range chain {
			if m == n {
				chain = append(chain[:i], chain[i+1:]...)
				break
			}
		}
		if len(chain) == 0 {
			delete(s.chains, key)
		} else {
			s.chains[key] = chain
		}
	}
	for _, succ := range n.succs {
		if !succ.pending[rid] {
			continue
		}
		delete(succ.pending, rid)
		if aborted && succ.readFrom[rid] && succ.cascade == "" {
			succ.cascade = fmt.Sprintf("spec: read-from predecessor %s aborted", rid)
			s.cascades.Inc()
		}
		if len(succ.pending) == 0 || succ.cascade != "" {
			for _, w := range succ.waiters {
				close(w)
			}
			succ.waiters = nil
		}
	}
}

// --- engine integration ------------------------------------------------------

// execSpec is the queue-mode Exec body: no lock manager, speculative chain
// reads, conflicts impossible by construction because the data server's
// per-key queues serialize same-key operations. Caller holds b.mu and has
// verified the branch is active. Same-key operations MUST be serialized by
// the caller (the data server's planner does); disjoint keys may run
// concurrently.
func (e *Engine) execSpec(b *branch, op msg.Op) msg.OpResult {
	e.spec.execs.Inc()
	poison := func(reason string) msg.OpResult {
		b.poisoned = true
		b.reason = reason
		return msg.OpResult{OK: false, Err: reason}
	}
	switch op.Code {
	case msg.OpGet:
		val, num := e.specValue(b, op.Key)
		return msg.OpResult{Val: val, Num: num, OK: true}

	case msg.OpPut:
		if reason := e.spec.write(b.rid, op.Key, op.Val); reason != "" {
			return poison(reason)
		}
		b.write(op.Key, op.Val)
		return msg.OpResult{OK: true}

	case msg.OpAdd:
		_, cur := e.specValue(b, op.Key)
		next := cur + op.Delta
		nv := kv.EncodeInt(next)
		if reason := e.spec.write(b.rid, op.Key, nv); reason != "" {
			return poison(reason)
		}
		b.write(op.Key, nv)
		return msg.OpResult{Num: next, OK: true}

	case msg.OpCheckGE:
		_, cur := e.specValue(b, op.Key)
		if cur < op.Delta {
			r := poison(fmt.Sprintf("check failed: %s=%d < %d", op.Key, cur, op.Delta))
			r.Num = cur
			return r
		}
		return msg.OpResult{Num: cur, OK: true}

	case msg.OpSleep:
		// Same cost model as lock mode, minus the held row locks: the queue
		// executor owns the key for the duration instead.
		//etxlint:allow lockheld — models SQL row work; the per-key queue owns the key for the work's duration, which is the cost model
		spin.Sleep(time.Duration(op.Delta))
		return msg.OpResult{OK: true}

	default:
		return msg.OpResult{OK: false, Err: fmt.Sprintf("unknown op %d", op.Code)}
	}
}

// specValue is the queue-mode read: the branch's own pending write first
// (read-your-writes), then the chain's nearest predecessor write, then the
// committed store. Caller holds b.mu.
func (e *Engine) specValue(b *branch, key string) (val []byte, num int64) {
	if i, ok := b.wIdx[key]; ok {
		val = b.writes[i].Val
	} else if v, fromPred := e.spec.read(b.rid, key); fromPred {
		val = v
	} else if v, ok := e.store.Get(key); ok {
		val = v
	}
	if len(val) == 8 {
		if n, err := kv.DecodeInt(val); err == nil {
			num = n
		}
	}
	return val, num
}

// SnapRead answers the read-only fast path: key's last committed value,
// outside any branch, without locks. The data server calls it at a batch
// boundary so the snapshot reflects a fully-executed batch.
func (e *Engine) SnapRead(key string) msg.OpResult {
	var num int64
	val, _ := e.store.Get(key)
	if len(val) == 8 {
		if n, err := kv.DecodeInt(val); err == nil {
			num = n
		}
	}
	return msg.OpResult{Val: val, Num: num, OK: true}
}

// Poison marks rid's branch to vote no, recording reason. The data server
// uses it when a queue-mode vote gate times out (deadlock resolution by
// abort, the lock-mode timeout's analogue). Unknown or finished branches are
// left alone.
func (e *Engine) Poison(rid id.ResultID, reason string) {
	b, _, done := e.getBranch(rid, false)
	if done || b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.status == StatusActive && !b.poisoned {
		b.poisoned = true
		b.reason = reason
	}
}

// QueueExec reports whether the engine runs the queue-oriented deterministic
// execution mode.
func (e *Engine) QueueExec() bool { return e.cfg.QueueExec }

// LockTimeout returns the engine's lock-wait (and vote-gate) bound.
func (e *Engine) LockTimeout() time.Duration { return e.cfg.LockTimeout }

// LockStats snapshots the lock manager's contention counters. Queue mode
// must show zero acquisitions — the property the benchmarks verify.
func (e *Engine) LockStats() lockmgr.Stats { return e.locks.Stats() }

// SpecStats snapshots the speculative executor's counters (zero when
// QueueExec is off).
func (e *Engine) SpecStats() SpecStats {
	if e.spec == nil {
		return SpecStats{}
	}
	return e.spec.Stats()
}
