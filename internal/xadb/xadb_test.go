package xadb

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/stablestore"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(stablestore.New(0), Config{Self: id.DBServer(1), LockTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func rid(seq, try uint64) id.ResultID {
	return id.ResultID{Client: id.Client(1), Seq: seq, Try: try}
}

func TestExecGetPutAdd(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	r := rid(1, 1)

	if rep := e.Exec(ctx, r, msg.Op{Code: msg.OpPut, Key: "k", Val: []byte("v")}); !rep.OK {
		t.Fatalf("put: %+v", rep)
	}
	// Read-your-writes before commit.
	if rep := e.Exec(ctx, r, msg.Op{Code: msg.OpGet, Key: "k"}); !rep.OK || string(rep.Val) != "v" {
		t.Fatalf("get: %+v", rep)
	}
	if rep := e.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "n", Delta: 5}); !rep.OK || rep.Num != 5 {
		t.Fatalf("add: %+v", rep)
	}
	if rep := e.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "n", Delta: -2}); !rep.OK || rep.Num != 3 {
		t.Fatalf("second add: %+v", rep)
	}
	// Uncommitted writes are invisible in the store.
	if _, ok := e.Store().Get("k"); ok {
		t.Fatal("uncommitted write leaked into the store")
	}
}

func TestVoteCommitAppliesWrites(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	r := rid(1, 1)
	e.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "acct", Delta: 100})
	if v := e.Vote(r); v != msg.VoteYes {
		t.Fatalf("vote = %v", v)
	}
	if o := e.Decide(r, msg.OutcomeCommit); o != msg.OutcomeCommit {
		t.Fatalf("decide = %v", o)
	}
	if n, _ := e.Store().GetInt("acct"); n != 100 {
		t.Fatalf("acct = %d after commit", n)
	}
	if st, ok := e.BranchStatus(r); !ok || st != StatusCommitted {
		t.Fatalf("status = %v,%v", st, ok)
	}
}

func TestAbortDiscardsWritesAndReleasesLocks(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	r1, r2 := rid(1, 1), rid(2, 1)
	e.Exec(ctx, r1, msg.Op{Code: msg.OpPut, Key: "k", Val: []byte("dirty")})
	if o := e.Decide(r1, msg.OutcomeAbort); o != msg.OutcomeAbort {
		t.Fatalf("decide = %v", o)
	}
	if _, ok := e.Store().Get("k"); ok {
		t.Fatal("aborted write reached the store")
	}
	// The lock must be free for the next try.
	if rep := e.Exec(ctx, r2, msg.Op{Code: msg.OpPut, Key: "k", Val: []byte("clean")}); !rep.OK {
		t.Fatalf("lock not released on abort: %+v", rep)
	}
}

func TestDecideContractAbortInAbortOut(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	r := rid(1, 1)
	e.Exec(ctx, r, msg.Op{Code: msg.OpPut, Key: "k", Val: []byte("v")})
	e.Vote(r)
	// (a): input abort -> returned abort, even after a yes vote.
	if o := e.Decide(r, msg.OutcomeAbort); o != msg.OutcomeAbort {
		t.Fatalf("decide(abort) = %v", o)
	}
}

func TestDecideCommitWithoutPrepareDegradesToAbort(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	r := rid(1, 1)
	e.Exec(ctx, r, msg.Op{Code: msg.OpPut, Key: "k", Val: []byte("v")})
	// No vote happened; contract (b) does not apply, so abort is returned.
	if o := e.Decide(r, msg.OutcomeCommit); o != msg.OutcomeAbort {
		t.Fatalf("decide(commit) on unprepared branch = %v, want abort", o)
	}
	if _, ok := e.Store().Get("k"); ok {
		t.Fatal("write applied without prepare")
	}
}

func TestDecideIsIdempotent(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	r := rid(1, 1)
	e.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "n", Delta: 1})
	e.Vote(r)
	if o := e.Decide(r, msg.OutcomeCommit); o != msg.OutcomeCommit {
		t.Fatal("first decide failed")
	}
	// Duplicate decides (message retries) return the recorded outcome.
	for i := 0; i < 3; i++ {
		if o := e.Decide(r, msg.OutcomeCommit); o != msg.OutcomeCommit {
			t.Fatalf("duplicate decide #%d = %v", i, o)
		}
	}
	// Even a conflicting late abort cannot change a recorded commit.
	if o := e.Decide(r, msg.OutcomeAbort); o != msg.OutcomeCommit {
		t.Fatalf("late abort overrode commit: %v", o)
	}
	if n, _ := e.Store().GetInt("n"); n != 1 {
		t.Fatalf("n = %d, applied more than once", n)
	}
}

func TestVoteUnknownBranchIsYes(t *testing.T) {
	e := newEngine(t)
	// A db server never touched by the try votes yes on an empty branch
	// (prepare is broadcast to the full dlist in the paper's protocol).
	if v := e.Vote(rid(9, 1)); v != msg.VoteYes {
		t.Fatalf("vote on untouched branch = %v", v)
	}
	if o := e.Decide(rid(9, 1), msg.OutcomeCommit); o != msg.OutcomeCommit {
		t.Fatalf("decide = %v", o)
	}
}

func TestCheckGEPoisonsBranch(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	e.Seed([]kv.Write{{Key: "seats", Val: kv.EncodeInt(1)}})
	r := rid(1, 1)
	e.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "seats", Delta: -2})
	rep := e.Exec(ctx, r, msg.Op{Code: msg.OpCheckGE, Key: "seats", Delta: 0})
	if rep.OK {
		t.Fatalf("check must fail: %+v", rep)
	}
	// The paper: "user-level aborts ... regular result values that the
	// databases then can refuse to commit" — the refusal is a no vote.
	if v := e.Vote(r); v != msg.VoteNo {
		t.Fatalf("vote on poisoned branch = %v, want no", v)
	}
	if o := e.Decide(r, msg.OutcomeAbort); o != msg.OutcomeAbort {
		t.Fatalf("decide = %v", o)
	}
	if n, _ := e.Store().GetInt("seats"); n != 1 {
		t.Fatalf("seats = %d, want untouched 1", n)
	}
}

func TestLockConflictTimesOutAndPoisons(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	r1, r2 := rid(1, 1), rid(2, 1)
	e.Exec(ctx, r1, msg.Op{Code: msg.OpPut, Key: "hot", Val: []byte("a")})
	rep := e.Exec(ctx, r2, msg.Op{Code: msg.OpPut, Key: "hot", Val: []byte("b")})
	if rep.OK {
		t.Fatal("conflicting write must time out")
	}
	if v := e.Vote(r2); v != msg.VoteNo {
		t.Fatalf("vote after lock timeout = %v, want no", v)
	}
	// r1 is unaffected.
	e.Vote(r1)
	if o := e.Decide(r1, msg.OutcomeCommit); o != msg.OutcomeCommit {
		t.Fatalf("r1 decide = %v", o)
	}
}

func TestExecAfterPrepareRejected(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	r := rid(1, 1)
	e.Exec(ctx, r, msg.Op{Code: msg.OpPut, Key: "k", Val: []byte("v")})
	e.Vote(r)
	if rep := e.Exec(ctx, r, msg.Op{Code: msg.OpPut, Key: "k2", Val: []byte("late")}); rep.OK {
		t.Fatal("exec after prepare must fail")
	}
}

func TestRecoveryRestoresPreparedBranch(t *testing.T) {
	st := stablestore.New(0)
	e1, err := Open(st, Config{Self: id.DBServer(1)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r := rid(1, 1)
	e1.Seed([]kv.Write{{Key: "acct", Val: kv.EncodeInt(100)}})
	e1.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "acct", Delta: -40})
	if v := e1.Vote(r); v != msg.VoteYes {
		t.Fatal("vote failed")
	}
	// Crash: reopen over the same stable storage.
	e2, err := Open(st, Config{Self: id.DBServer(1)})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Incarnation() != e1.Incarnation()+1 {
		t.Fatalf("incarnation %d -> %d, want +1", e1.Incarnation(), e2.Incarnation())
	}
	indoubt := e2.InDoubt()
	if len(indoubt) != 1 || indoubt[0] != r {
		t.Fatalf("InDoubt = %v", indoubt)
	}
	// The in-doubt branch still holds its lock: another try must not slip in.
	rep := e2.Exec(ctx, rid(2, 1), msg.Op{Code: msg.OpPut, Key: "acct", Val: []byte("x")})
	if rep.OK {
		t.Fatal("in-doubt branch lost its lock across recovery")
	}
	// Honour the commit after recovery (XA contract across crashes).
	if o := e2.Decide(r, msg.OutcomeCommit); o != msg.OutcomeCommit {
		t.Fatalf("decide after recovery = %v", o)
	}
	if n, _ := e2.Store().GetInt("acct"); n != 60 {
		t.Fatalf("acct = %d, want 60", n)
	}
}

func TestRecoveryLosesUnpreparedWork(t *testing.T) {
	st := stablestore.New(0)
	e1, _ := Open(st, Config{Self: id.DBServer(1)})
	ctx := context.Background()
	r := rid(1, 1)
	e1.Exec(ctx, r, msg.Op{Code: msg.OpPut, Key: "k", Val: []byte("transient")})
	// Crash before prepare.
	e2, _ := Open(st, Config{Self: id.DBServer(1)})
	if len(e2.InDoubt()) != 0 {
		t.Fatal("unprepared branch survived the crash")
	}
	if _, ok := e2.Store().Get("k"); ok {
		t.Fatal("unprepared write survived the crash")
	}
	// Voting now prepares an EMPTY branch and says yes; the protocol's
	// incarnation check is what protects against committing the hole.
	if v := e2.Vote(r); v != msg.VoteYes {
		t.Fatalf("vote = %v", v)
	}
	if e2.Incarnation() == e1.Incarnation() {
		t.Fatal("incarnation must change so app servers detect the loss")
	}
}

func TestCommittedStateSurvivesRepeatedCrashes(t *testing.T) {
	st := stablestore.New(0)
	ctx := context.Background()
	e, _ := Open(st, Config{Self: id.DBServer(1)})
	e.Seed([]kv.Write{{Key: "acct", Val: kv.EncodeInt(0)}})
	for i := uint64(1); i <= 5; i++ {
		r := rid(i, 1)
		e.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "acct", Delta: 10})
		e.Vote(r)
		e.Decide(r, msg.OutcomeCommit)
		// Crash and recover between every transaction.
		var err error
		e, err = Open(st, Config{Self: id.DBServer(1)})
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := e.Store().GetInt("acct"); n != int64(i)*10 {
			t.Fatalf("after %d commits and crashes: acct = %d", i, n)
		}
		// Idempotence across recovery: re-deciding returns the recorded outcome.
		if o := e.Decide(r, msg.OutcomeCommit); o != msg.OutcomeCommit {
			t.Fatalf("recorded outcome lost across crash: %v", o)
		}
	}
}

func TestCommitDirectBaselinePath(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	r := rid(1, 1)
	e.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "n", Delta: 7})
	if o := e.CommitDirect(r); o != msg.OutcomeCommit {
		t.Fatalf("CommitDirect = %v", o)
	}
	if n, _ := e.Store().GetInt("n"); n != 7 {
		t.Fatalf("n = %d", n)
	}
	// Poisoned branches abort.
	r2 := rid(2, 1)
	e.Seed([]kv.Write{{Key: "s", Val: kv.EncodeInt(0)}})
	e.Exec(ctx, r2, msg.Op{Code: msg.OpCheckGE, Key: "s", Delta: 5})
	if o := e.CommitDirect(r2); o != msg.OutcomeAbort {
		t.Fatalf("CommitDirect on poisoned branch = %v", o)
	}
}

func TestOpSleepSimulatesWork(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	start := time.Now()
	rep := e.Exec(ctx, rid(1, 1), msg.Op{Code: msg.OpSleep, Delta: int64(30 * time.Millisecond)})
	if !rep.OK {
		t.Fatalf("sleep: %+v", rep)
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Errorf("sleep took %v", el)
	}
}

func TestUnknownOpRejected(t *testing.T) {
	e := newEngine(t)
	if rep := e.Exec(context.Background(), rid(1, 1), msg.Op{Code: msg.OpCode(99)}); rep.OK {
		t.Fatal("unknown op accepted")
	}
}

func TestConcurrentTransactionsSerializable(t *testing.T) {
	// 8 workers each transfer 1 unit from acct/a to acct/b 25 times, with
	// conflicts resolved by lock timeouts and retries. Total money is
	// conserved and the final balances reflect exactly the committed count.
	e := newEngine(t)
	e.Seed([]kv.Write{
		{Key: "acct/a", Val: kv.EncodeInt(1000)},
		{Key: "acct/b", Val: kv.EncodeInt(0)},
	})
	ctx := context.Background()
	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r := id.ResultID{Client: id.Client(w + 1), Seq: uint64(i), Try: 1}
				ok1 := e.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "acct/a", Delta: -1}).OK
				ok2 := false
				if ok1 {
					ok2 = e.Exec(ctx, r, msg.Op{Code: msg.OpAdd, Key: "acct/b", Delta: 1}).OK
				}
				if ok1 && ok2 && e.Vote(r) == msg.VoteYes {
					if e.Decide(r, msg.OutcomeCommit) == msg.OutcomeCommit {
						mu.Lock()
						committed++
						mu.Unlock()
						continue
					}
				}
				e.Decide(r, msg.OutcomeAbort)
			}
		}()
	}
	wg.Wait()
	a, _ := e.Store().GetInt("acct/a")
	b, _ := e.Store().GetInt("acct/b")
	if a+b != 1000 {
		t.Fatalf("money not conserved: a=%d b=%d", a, b)
	}
	if b != committed {
		t.Fatalf("b=%d but committed=%d transfers", b, committed)
	}
	if committed == 0 {
		t.Fatal("no transaction ever committed")
	}
}

func TestForcedWritesAccounting(t *testing.T) {
	st := stablestore.New(0)
	e, _ := Open(st, Config{Self: id.DBServer(1)})
	ctx := context.Background()
	base := st.ForcedWrites()
	r := rid(1, 1)
	e.Exec(ctx, r, msg.Op{Code: msg.OpPut, Key: "k", Val: []byte("v")})
	e.Vote(r)                      // forced prepared record
	e.Decide(r, msg.OutcomeCommit) // forced commit record
	if got := st.ForcedWrites() - base; got != 2 {
		t.Fatalf("forced writes for prepare+commit = %d, want 2", got)
	}
}

func TestBranchStatusReporting(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	if _, ok := e.BranchStatus(rid(1, 1)); ok {
		t.Fatal("unknown branch reported a status")
	}
	e.Exec(ctx, rid(1, 1), msg.Op{Code: msg.OpPut, Key: "k", Val: nil})
	if s, _ := e.BranchStatus(rid(1, 1)); s != StatusActive {
		t.Fatalf("status = %v", s)
	}
	e.Vote(rid(1, 1))
	if s, _ := e.BranchStatus(rid(1, 1)); s != StatusPrepared {
		t.Fatalf("status = %v", s)
	}
	e.Decide(rid(1, 1), msg.OutcomeCommit)
	if s, _ := e.BranchStatus(rid(1, 1)); s != StatusCommitted {
		t.Fatalf("status = %v", s)
	}
	for _, s := range []BranchStatus{StatusActive, StatusPrepared, StatusCommitted, StatusAborted, BranchStatus(9)} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
}

func TestAbortActiveBranches(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	e.Exec(ctx, rid(1, 1), msg.Op{Code: msg.OpPut, Key: "a", Val: nil})
	e.Exec(ctx, rid(2, 1), msg.Op{Code: msg.OpPut, Key: "b", Val: nil})
	e.Vote(rid(2, 1)) // prepared: must survive
	if n := e.AbortActiveBranches(); n != 1 {
		t.Fatalf("aborted %d branches, want 1", n)
	}
	if s, _ := e.BranchStatus(rid(1, 1)); s != StatusAborted {
		t.Fatalf("active branch not aborted: %v", s)
	}
	if s, _ := e.BranchStatus(rid(2, 1)); s != StatusPrepared {
		t.Fatalf("prepared branch harmed: %v", s)
	}
}

func TestSeedIsDurable(t *testing.T) {
	st := stablestore.New(0)
	e1, _ := Open(st, Config{Self: id.DBServer(1)})
	e1.Seed([]kv.Write{{Key: "flights/LX1", Val: kv.EncodeInt(42)}})
	e2, err := Open(st, Config{Self: id.DBServer(1)})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := e2.Store().GetInt("flights/LX1"); n != 42 {
		t.Fatalf("seeded value lost across crash: %d", n)
	}
}

func TestManyBranchesStress(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r := id.ResultID{Client: id.Client(w + 1), Seq: uint64(i), Try: 1}
				key := fmt.Sprintf("k/%d/%d", w, i)
				e.Exec(ctx, r, msg.Op{Code: msg.OpPut, Key: key, Val: []byte("v")})
				if e.Vote(r) == msg.VoteYes {
					e.Decide(r, msg.OutcomeCommit)
				}
			}
		}()
	}
	wg.Wait()
	if e.Store().Len() != 8*50 {
		t.Fatalf("store has %d keys, want %d", e.Store().Len(), 8*50)
	}
}
