package xadb

import (
	"context"
	"fmt"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/stablestore"
)

// TestVoteBatchMatchesSingleVotes: the batched entry point returns exactly
// what per-branch Vote calls would, across yes, poisoned-no and
// already-aborted branches, while sharing one forced write.
func TestVoteBatchMatchesSingleVotes(t *testing.T) {
	st := stablestore.New(0)
	e, err := Open(st, Config{Self: id.DBServer(1), LockTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	good := rid(1, 1)
	e.Exec(ctx, good, msg.Op{Code: msg.OpAdd, Key: "a", Delta: 1})
	poisoned := rid(2, 1)
	e.Exec(ctx, poisoned, msg.Op{Code: msg.OpCheckGE, Key: "a", Delta: 1 << 40})
	aborted := rid(3, 1)
	e.Exec(ctx, aborted, msg.Op{Code: msg.OpAdd, Key: "b", Delta: 1})
	e.Decide(aborted, msg.OutcomeAbort)
	untouched := rid(4, 1)

	base := st.ForcedWrites()
	votes := e.VoteBatch([]id.ResultID{good, poisoned, aborted, untouched})
	want := []msg.Vote{msg.VoteYes, msg.VoteNo, msg.VoteNo, msg.VoteYes}
	for i, v := range votes {
		if v != want[i] {
			t.Errorf("vote[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Two yes votes (good + untouched) share a single forced write.
	if got := st.ForcedWrites() - base; got != 1 {
		t.Errorf("forced writes for the batch = %d, want 1 shared Sync", got)
	}
}

// TestDecideBatchCommitsAndRecovers: a batch of commits applies every
// write-set, shares one forced write, and the commit records survive a
// crash/recovery of the engine on the same store.
func TestDecideBatchCommitsAndRecovers(t *testing.T) {
	st := stablestore.New(0)
	e, err := Open(st, Config{Self: id.DBServer(1), LockTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const n = 5
	rids := make([]id.ResultID, n)
	for i := range rids {
		rids[i] = rid(uint64(10+i), 1)
		e.Exec(ctx, rids[i], msg.Op{Code: msg.OpAdd, Key: fmt.Sprintf("k%d", i), Delta: int64(i + 1)})
	}
	if votes := e.VoteBatch(rids); len(votes) != n {
		t.Fatalf("votes = %v", votes)
	}
	reqs := make([]DecideReq, n)
	for i, r := range rids {
		reqs[i] = DecideReq{RID: r, O: msg.OutcomeCommit}
	}
	base := st.ForcedWrites()
	outs := e.DecideBatch(reqs)
	for i, o := range outs {
		if o != msg.OutcomeCommit {
			t.Errorf("outcome[%d] = %v", i, o)
		}
	}
	if got := st.ForcedWrites() - base; got != 1 {
		t.Errorf("forced writes for %d commits = %d, want 1 shared Sync", n, got)
	}
	for i := 0; i < n; i++ {
		if v, _ := e.Store().GetInt(fmt.Sprintf("k%d", i)); v != int64(i+1) {
			t.Errorf("k%d = %d, want %d", i, v, i+1)
		}
	}

	// Recover on the same stable storage: the batched commit records replay.
	re, err := Open(st, Config{Self: id.DBServer(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, _ := re.Store().GetInt(fmt.Sprintf("k%d", i)); v != int64(i+1) {
			t.Errorf("after recovery: k%d = %d, want %d", i, v, i+1)
		}
		if s, ok := re.BranchStatus(rids[i]); !ok || s != StatusCommitted {
			t.Errorf("after recovery: status[%d] = %v (known=%v)", i, s, ok)
		}
	}
}

// TestBatchNotStalledByLockWaitingExec: a branch whose mutex is held by an
// Exec waiting out a data-lock acquisition must not stall the rest of the
// batch — in particular not the Decide(abort) in the same batch that
// releases the contended lock. The try-lock first pass preserves what the
// per-message-goroutine design guaranteed.
func TestBatchNotStalledByLockWaitingExec(t *testing.T) {
	const lockTimeout = 2 * time.Second
	st := stablestore.New(0)
	e, err := Open(st, Config{Self: id.DBServer(1), LockTimeout: lockTimeout})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	holder := rid(30, 1)
	e.Exec(ctx, holder, msg.Op{Code: msg.OpAdd, Key: "hot", Delta: 1})
	waiter := rid(31, 1)
	execDone := make(chan msg.OpResult, 1)
	go func() {
		// Blocks on the data lock held by `holder`, holding waiter's branch
		// mutex the whole time.
		execDone <- e.Exec(ctx, waiter, msg.Op{Code: msg.OpAdd, Key: "hot", Delta: 1})
	}()
	// Wait until the Exec is actually inside its lock wait.
	deadline := time.Now().Add(time.Second)
	for {
		if s, ok := e.BranchStatus(waiter); ok && s == StatusActive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter branch never appeared")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	outs, _ := e.DecideAndVoteBatch([]DecideReq{
		{RID: waiter, O: msg.OutcomeAbort}, // branch mutex busy: must be deferred, not waited on
		{RID: holder, O: msg.OutcomeAbort}, // releases the contended lock
	}, nil)
	elapsed := time.Since(start)
	if outs[0] != msg.OutcomeAbort || outs[1] != msg.OutcomeAbort {
		t.Fatalf("outcomes = %v", outs)
	}
	if elapsed >= lockTimeout/2 {
		t.Errorf("batch took %v: stalled behind the lock-waiting Exec (LockTimeout %v)", elapsed, lockTimeout)
	}
	<-execDone
}

// TestDecideBatchMixedOutcomes: aborts and commits coexist in one batch and
// remain idempotent against the decide() contract.
func TestDecideBatchMixedOutcomes(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()

	commit := rid(20, 1)
	e.Exec(ctx, commit, msg.Op{Code: msg.OpAdd, Key: "c", Delta: 7})
	e.Vote(commit)
	abort := rid(21, 1)
	e.Exec(ctx, abort, msg.Op{Code: msg.OpAdd, Key: "d", Delta: 9})
	unknown := rid(22, 1)
	unprepared := rid(23, 1)
	e.Exec(ctx, unprepared, msg.Op{Code: msg.OpAdd, Key: "e", Delta: 11})

	outs := e.DecideBatch([]DecideReq{
		{RID: commit, O: msg.OutcomeCommit},
		{RID: abort, O: msg.OutcomeAbort},
		{RID: unknown, O: msg.OutcomeAbort},
		{RID: unprepared, O: msg.OutcomeCommit}, // never voted yes: degrades to abort
	})
	want := []msg.Outcome{msg.OutcomeCommit, msg.OutcomeAbort, msg.OutcomeAbort, msg.OutcomeAbort}
	for i, o := range outs {
		if o != want[i] {
			t.Errorf("outcome[%d] = %v, want %v", i, o, want[i])
		}
	}
	if v, _ := e.Store().GetInt("c"); v != 7 {
		t.Errorf("c = %d, want 7", v)
	}
	if _, ok := e.Store().Get("e"); ok {
		t.Error("unprepared branch's write leaked into the store")
	}
	// Idempotence: re-deciding through the batch path returns the recorded
	// outcomes unchanged.
	again := e.DecideBatch([]DecideReq{{RID: commit, O: msg.OutcomeCommit}, {RID: abort, O: msg.OutcomeAbort}})
	if again[0] != msg.OutcomeCommit || again[1] != msg.OutcomeAbort {
		t.Errorf("re-decide = %v", again)
	}
}
