package stablestore

import (
	"testing"
	"time"
)

func TestAppendAndReadBack(t *testing.T) {
	s := New(0)
	s.Append("wal", []byte("a"), false)
	s.Append("wal", []byte("b"), true)
	s.Append("other", []byte("x"), false)
	got := s.ReadLog("wal")
	if len(got) != 2 || string(got[0]) != "a" || string(got[1]) != "b" {
		t.Fatalf("ReadLog = %q", got)
	}
	if s.LogLen("wal") != 2 || s.LogLen("other") != 1 || s.LogLen("missing") != 0 {
		t.Fatal("LogLen misreports")
	}
}

func TestAppendCopiesInput(t *testing.T) {
	s := New(0)
	buf := []byte("mutate-me")
	s.Append("wal", buf, false)
	buf[0] = 'X'
	if got := s.ReadLog("wal"); string(got[0]) != "mutate-me" {
		t.Fatalf("stored record aliased caller's buffer: %q", got[0])
	}
	// And reads return copies too.
	out := s.ReadLog("wal")
	out[0][0] = 'Y'
	if got := s.ReadLog("wal"); string(got[0]) != "mutate-me" {
		t.Fatalf("read aliased internal buffer: %q", got[0])
	}
}

func TestForcedWriteLatencyAndCount(t *testing.T) {
	const lat = 20 * time.Millisecond
	s := New(lat)
	start := time.Now()
	s.Append("wal", []byte("forced"), true)
	if el := time.Since(start); el < lat {
		t.Errorf("forced append took %v, want >= %v", el, lat)
	}
	start = time.Now()
	s.Append("wal", []byte("lazy"), false)
	if el := time.Since(start); el > lat/2 {
		t.Errorf("unforced append took %v, should be immediate", el)
	}
	if s.ForcedWrites() != 1 {
		t.Errorf("ForcedWrites = %d, want 1", s.ForcedWrites())
	}
	if s.TotalWrites() != 2 {
		t.Errorf("TotalWrites = %d, want 2", s.TotalWrites())
	}
}

func TestSetForceLatency(t *testing.T) {
	s := New(50 * time.Millisecond)
	s.SetForceLatency(0)
	start := time.Now()
	s.Append("wal", []byte("r"), true)
	if el := time.Since(start); el > 20*time.Millisecond {
		t.Errorf("forced append after SetForceLatency(0) took %v", el)
	}
}

func TestTruncateLog(t *testing.T) {
	s := New(0)
	s.Append("wal", []byte("r"), false)
	s.TruncateLog("wal")
	if s.LogLen("wal") != 0 {
		t.Fatal("TruncateLog left records behind")
	}
}

func TestPutGet(t *testing.T) {
	s := New(0)
	if _, ok := s.Get("inc"); ok {
		t.Fatal("Get on empty store returned a value")
	}
	s.Put("inc", []byte{7})
	v, ok := s.Get("inc")
	if !ok || len(v) != 1 || v[0] != 7 {
		t.Fatalf("Get = (%v,%v)", v, ok)
	}
	s.Put("inc", []byte{8})
	if v, _ := s.Get("inc"); v[0] != 8 {
		t.Fatal("Put must overwrite")
	}
	if s.ForcedWrites() != 2 {
		t.Errorf("Put must always force; ForcedWrites = %d", s.ForcedWrites())
	}
}

func TestSurvivesLikeStableStorage(t *testing.T) {
	// The crash model: the Store object persists while the process object is
	// rebuilt. Nothing in the store may depend on process state, so after a
	// "crash" (drop all references except the store) everything reads back.
	s := New(0)
	s.Append("wal", []byte("pre-crash"), true)
	s.Put("incarnation", []byte{3})
	// ... crash happens: a brand-new engine opens the same store ...
	if got := s.ReadLog("wal"); len(got) != 1 || string(got[0]) != "pre-crash" {
		t.Fatal("log lost across simulated crash")
	}
	if v, ok := s.Get("incarnation"); !ok || v[0] != 3 {
		t.Fatal("kv lost across simulated crash")
	}
}
