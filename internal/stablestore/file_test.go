package stablestore

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.journal")
	s1, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1.Append("wal", []byte("r1"), true)
	s1.Append("wal", []byte("r2"), false)
	s1.Put("incarnation", []byte{1})
	if err := s1.CloseFile(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseFile()
	recs := s2.ReadLog("wal")
	if len(recs) != 2 || string(recs[0]) != "r1" || string(recs[1]) != "r2" {
		t.Fatalf("recovered log = %q", recs)
	}
	if v, ok := s2.Get("incarnation"); !ok || v[0] != 1 {
		t.Fatalf("recovered kv = %v,%v", v, ok)
	}
	// Appends after reopen extend the same journal.
	s2.Append("wal", []byte("r3"), true)
	if s2.LogLen("wal") != 3 {
		t.Fatal("append after reopen failed")
	}
}

func TestFileStoreUnforcedAppendsSurviveCleanClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.journal")
	s1, _ := OpenFile(path, 0)
	for i := 0; i < 10; i++ {
		s1.Append("wal", []byte{byte(i)}, false)
	}
	s1.CloseFile()
	s2, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseFile()
	if s2.LogLen("wal") != 10 {
		t.Fatalf("recovered %d records, want 10", s2.LogLen("wal"))
	}
}

func TestFileStoreTruncateSurvives(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.journal")
	s1, _ := OpenFile(path, 0)
	s1.Append("wal", []byte("old"), true)
	s1.TruncateLog("wal")
	s1.Append("wal", []byte("new"), true)
	s1.CloseFile()

	s2, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseFile()
	recs := s2.ReadLog("wal")
	if len(recs) != 1 || string(recs[0]) != "new" {
		t.Fatalf("recovered log = %q", recs)
	}
}

func TestFileStoreToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.journal")
	s1, _ := OpenFile(path, 0)
	s1.Append("wal", []byte("good"), true)
	s1.CloseFile()

	// Simulate a crash mid-append: garbage half-record at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 200}) // tagAppend + huge name length, then EOF
	f.Close()

	s2, err := OpenFile(path, 0)
	if err != nil {
		t.Fatalf("torn tail must not fail recovery: %v", err)
	}
	defer s2.CloseFile()
	recs := s2.ReadLog("wal")
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("recovered log = %q", recs)
	}
}

func TestFileStoreRejectsCorruptTag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.journal")
	if err := os.WriteFile(path, []byte{99, 1, 1, 'x', 'y'}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, 0); err == nil {
		t.Fatal("corrupt journal accepted")
	}
}
