// Package stablestore simulates the stable storage of the paper's system
// model (Section 2: "The crash of a process has no impact on its stable
// storage"). A Store outlives the process object that uses it: the cluster
// harness keeps the Store when it crashes a database server and hands the
// same Store back on recovery, while all volatile state is rebuilt.
//
// Forced (synchronous) writes carry a configurable latency, which is how the
// benchmark harness reproduces the eager-log-IO cost that separates 2PC
// (forced disk writes, Figure 8: log-start 12.5 ms) from the paper's
// replicated scheme (in-memory consensus round, 4.5 ms).
package stablestore

import (
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/spin"
)

// Store is one process's stable storage: named append-only logs plus a small
// key-value area for registers like the incarnation counter.
type Store struct {
	forceLatency atomic.Int64 // nanoseconds per forced write
	forcedWrites atomic.Int64
	totalWrites  atomic.Int64

	mu   sync.Mutex
	logs map[string][][]byte
	kv   map[string][]byte

	// forceMu serializes forced writes: a server has one log device, so
	// concurrent fsyncs queue behind each other. This is the per-database
	// commit bottleneck that makes sharding a throughput lever — it is paid
	// only when a force latency is configured.
	forceMu sync.Mutex

	// persist, when non-nil, journals every mutation to disk (OpenFile).
	persist *filePersist
}

// New creates an empty store whose forced writes take forceLatency.
func New(forceLatency time.Duration) *Store {
	s := &Store{
		logs: make(map[string][][]byte),
		kv:   make(map[string][]byte),
	}
	s.forceLatency.Store(int64(forceLatency))
	return s
}

// SetForceLatency changes the simulated fsync cost.
func (s *Store) SetForceLatency(d time.Duration) { s.forceLatency.Store(int64(d)) }

// ForcedWrites returns how many forced appends have completed (metrics).
func (s *Store) ForcedWrites() int64 { return s.forcedWrites.Load() }

// TotalWrites returns how many appends (forced or not) have completed.
func (s *Store) TotalWrites() int64 { return s.totalWrites.Load() }

// Append adds rec to the named log. If force is true the call blocks for the
// configured fsync latency, modelling a synchronous disk write; unforced
// appends return immediately (the data still survives crashes — we simulate
// a well-behaved write cache, which is sufficient because the protocols only
// rely on durability of records they forced).
func (s *Store) Append(log string, rec []byte, force bool) {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	s.mu.Lock()
	s.logs[log] = append(s.logs[log], cp)
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.journal(tagAppend, log, cp, force)
	}
	s.totalWrites.Add(1)
	if force {
		s.force()
		s.forcedWrites.Add(1)
	}
}

// force pays one serialized synchronous-write latency.
func (s *Store) force() {
	d := time.Duration(s.forceLatency.Load())
	if d <= 0 {
		return
	}
	s.forceMu.Lock()
	spin.Sleep(d)
	s.forceMu.Unlock()
}

// ReadLog returns a copy of all records appended to the named log, in order.
func (s *Store) ReadLog(log string) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.logs[log]
	out := make([][]byte, len(recs))
	for i, r := range recs {
		cp := make([]byte, len(r))
		copy(cp, r)
		out[i] = cp
	}
	return out
}

// LogLen returns the number of records in the named log.
func (s *Store) LogLen(log string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.logs[log])
}

// TruncateLog discards the named log's records (checkpointing support).
func (s *Store) TruncateLog(log string) {
	s.mu.Lock()
	delete(s.logs, log)
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.journal(tagTrunc, log, nil, true)
	}
}

// Put stores a small value under key (e.g. the incarnation counter). Put is
// always forced.
func (s *Store) Put(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	s.kv[key] = cp
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.journal(tagPut, key, cp, true)
	}
	s.totalWrites.Add(1)
	s.force()
	s.forcedWrites.Add(1)
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.kv[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true
}
