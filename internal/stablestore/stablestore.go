// Package stablestore simulates the stable storage of the paper's system
// model (Section 2: "The crash of a process has no impact on its stable
// storage"). A Store outlives the process object that uses it: the cluster
// harness keeps the Store when it crashes a database server and hands the
// same Store back on recovery, while all volatile state is rebuilt.
//
// Forced (synchronous) writes carry a configurable latency, which is how the
// benchmark harness reproduces the eager-log-IO cost that separates 2PC
// (forced disk writes, Figure 8: log-start 12.5 ms) from the paper's
// replicated scheme (in-memory consensus round, 4.5 ms).
//
// A server has one log device, so forces queue behind each other. With the
// default batch window of 0 every forced write pays its own serialized
// device force — the per-database commit bottleneck that makes sharding a
// throughput lever. A positive batch window enables the group-commit
// combiner: concurrent forced writes form a cohort, one leader pays a single
// device force (one fsync) that covers every record the cohort appended, and
// the whole cohort is released together. Because a cohort stays open until
// its leader actually reaches the device, everything that arrives while the
// previous force is in flight piggybacks on the next one — batching emerges
// under load without tuning.
package stablestore

import (
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/spin"
)

// Store is one process's stable storage: named append-only logs plus a small
// key-value area for registers like the incarnation counter.
type Store struct {
	forceLatency atomic.Int64 // nanoseconds per device force
	batchWindow  atomic.Int64 // group-commit accumulation window; 0 disables
	maxBatch     atomic.Int64 // cohort size cap; 0 = unlimited
	adaptive     atomic.Bool  // lone leaders skip the accumulation window
	forcers      atomic.Int64 // force() calls currently in flight
	forcedWrites atomic.Int64 // forced writes requested (Append force, Put, Sync)
	totalWrites  atomic.Int64
	syncs        atomic.Int64 // device forces actually paid

	mu   sync.Mutex
	logs map[string][][]byte // guarded by mu
	kv   map[string][]byte   // guarded by mu

	// forceMu serializes access to the (simulated) log device: a server has
	// one, so device forces queue behind each other.
	forceMu sync.Mutex

	// cohortMu guards the group-commit cohort currently open for enrollment.
	cohortMu sync.Mutex
	cohort   *cohort // guarded by cohortMu

	// persist, when non-nil, journals every mutation to disk (OpenFile).
	persist *filePersist
}

// cohort is one group-commit batch: n writers released together by the one
// leader's device force.
type cohort struct {
	n    int
	done chan struct{}
}

// New creates an empty store whose forced writes take forceLatency.
func New(forceLatency time.Duration) *Store {
	s := &Store{
		logs: make(map[string][][]byte),
		kv:   make(map[string][]byte),
	}
	s.forceLatency.Store(int64(forceLatency))
	return s
}

// SetForceLatency changes the simulated fsync cost.
func (s *Store) SetForceLatency(d time.Duration) { s.forceLatency.Store(int64(d)) }

// SetBatchWindow sets the group-commit window: 0 (the default) keeps every
// forced write paying its own serialized device force; any positive value
// enables the combiner, with the window being the extra time a cohort leader
// waits for followers before forcing (useful when the device is idle —
// under load, arrivals piggyback on the in-flight force regardless).
func (s *Store) SetBatchWindow(d time.Duration) { s.batchWindow.Store(int64(d)) }

// SetMaxBatch caps the group-commit cohort size; 0 means unlimited.
func (s *Store) SetMaxBatch(n int) { s.maxBatch.Store(int64(n)) }

// SetAdaptive makes the combiner's accumulation window depth-aware: a cohort
// leader that observes no other force in flight heads straight for the
// device instead of sleeping the window — a lone writer has no followers
// worth waiting for — while concurrent arrivals still pay the window and
// share the force. The observed signal is the combiner's own in-flight
// count, so no caller plumbing is needed.
func (s *Store) SetAdaptive(on bool) { s.adaptive.Store(on) }

// ForcedWrites returns how many forced writes were requested and completed:
// forced appends, puts and Syncs (metrics).
func (s *Store) ForcedWrites() int64 { return s.forcedWrites.Load() }

// TotalWrites returns how many appends (forced or not) have completed.
func (s *Store) TotalWrites() int64 { return s.totalWrites.Load() }

// Syncs returns how many device forces (fsyncs) were actually paid. Without
// batching it equals ForcedWrites; with the combiner on it is lower, and
// ForcedWrites/Syncs is the mean group-commit batch size.
func (s *Store) Syncs() int64 { return s.syncs.Load() }

// Append adds rec to the named log. If force is true the call blocks until
// the record is durable — through its own device force, or as a member of a
// group-commit cohort sharing one — modelling a synchronous disk write;
// unforced appends return immediately (the data still survives crashes — we
// simulate a well-behaved write cache, which is sufficient because the
// protocols only rely on durability of records they forced).
func (s *Store) Append(log string, rec []byte, force bool) {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	s.mu.Lock()
	s.logs[log] = append(s.logs[log], cp)
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.journal(tagAppend, log, cp, false)
	}
	s.totalWrites.Add(1)
	if force {
		s.force()
		s.forcedWrites.Add(1)
	}
}

// Sync forces the log device once: every record appended (forced or not)
// before the call is durable when it returns. It is the group-commit entry
// point for batched callers — append a batch of records unforced, then pay
// one Sync to cover them all. A Sync counts as one forced write and goes
// through the same combiner as forced appends.
func (s *Store) Sync() {
	s.force()
	s.forcedWrites.Add(1)
}

// force makes everything journaled so far durable and pays the simulated
// device latency, combining with concurrent forces when a batch window is
// configured.
func (s *Store) force() {
	if time.Duration(s.forceLatency.Load()) <= 0 && s.persist == nil {
		// No device to speak of: nothing to combine, nothing to pay — and
		// nothing counted, Syncs() reports device forces actually paid.
		return
	}
	s.forcers.Add(1)
	defer s.forcers.Add(-1)
	window := time.Duration(s.batchWindow.Load())
	if window <= 0 {
		// Pre-group-commit behaviour: one serialized device force each.
		s.forceMu.Lock()
		s.syncDevice()
		s.forceMu.Unlock()
		s.syncs.Add(1)
		return
	}

	// Group commit. Join the open cohort if there is one with room...
	s.cohortMu.Lock()
	if c := s.cohort; c != nil {
		if max := int(s.maxBatch.Load()); max <= 0 || c.n < max {
			c.n++
			s.cohortMu.Unlock()
			<-c.done
			return
		}
	}
	// ...else lead a new one.
	c := &cohort{n: 1, done: make(chan struct{})}
	s.cohort = c
	s.cohortMu.Unlock()

	// Accumulate followers for the window, then head for the device. The
	// cohort stays open until the device is actually ours: everything that
	// arrives while the previous force is still in flight joins this cohort
	// and is covered by our single force. An adaptive lone leader skips the
	// accumulation entirely — the snapshot may miss a racing arrival, but
	// the racer either enrolls before this leader reaches the device (the
	// cohort is still open) or leads its own cohort; durability never
	// depends on the window.
	if !s.adaptive.Load() || s.forcers.Load() > 1 {
		spin.Sleep(window)
	}
	s.forceMu.Lock()
	s.cohortMu.Lock()
	if s.cohort == c {
		s.cohort = nil
	}
	s.cohortMu.Unlock()
	// Every member's record was journaled before it enrolled, and enrollment
	// closed before this force: one force covers the whole cohort.
	s.syncDevice()
	s.forceMu.Unlock()
	s.syncs.Add(1)
	close(c.done)
}

// syncDevice performs one device force: flush+fsync of the journal when
// file-backed, plus the simulated latency. Caller holds forceMu.
func (s *Store) syncDevice() {
	if s.persist != nil {
		//etxlint:allow lockheld — serializing device forces is forceMu's whole purpose; the group-commit combiner amortizes the wait
		s.persist.sync()
	}
	if d := time.Duration(s.forceLatency.Load()); d > 0 {
		//etxlint:allow lockheld — the simulated device latency must be inside the forceMu critical section to model one device
		spin.Sleep(d)
	}
}

// ReadLog returns a copy of all records appended to the named log, in order.
func (s *Store) ReadLog(log string) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.logs[log]
	out := make([][]byte, len(recs))
	for i, r := range recs {
		cp := make([]byte, len(r))
		copy(cp, r)
		out[i] = cp
	}
	return out
}

// LogLen returns the number of records in the named log.
func (s *Store) LogLen(log string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.logs[log])
}

// TruncateLog discards the named log's records (checkpointing support).
func (s *Store) TruncateLog(log string) {
	s.mu.Lock()
	delete(s.logs, log)
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.journal(tagTrunc, log, nil, true)
	}
}

// Put stores a small value under key (e.g. the incarnation counter). Put is
// always forced.
func (s *Store) Put(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	s.kv[key] = cp
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.journal(tagPut, key, cp, false)
	}
	s.totalWrites.Add(1)
	s.force()
	s.forcedWrites.Add(1)
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.kv[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true
}
