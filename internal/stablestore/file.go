package stablestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// filePersist journals every mutation to an append-only file so a Store can
// survive real process restarts (the multi-process TCP deployment). The
// in-memory Store stays the source of truth for reads; the journal is
// replayed on open.
type filePersist struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// Journal record tags.
const (
	tagAppend byte = 1
	tagPut    byte = 2
	tagTrunc  byte = 3
)

// OpenFile opens (or creates) a file-backed store at path. Forced appends
// additionally pay forceLatency, so the same cost model applies to real
// deployments. The journal is replayed into memory before returning.
func OpenFile(path string, forceLatency time.Duration) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stablestore: open %s: %w", path, err)
	}
	s := New(forceLatency)
	if err := replay(f, s); err != nil {
		f.Close()
		return nil, fmt.Errorf("stablestore: replay %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("stablestore: seek %s: %w", path, err)
	}
	s.persist = &filePersist{f: f, w: bufio.NewWriter(f)}
	return s, nil
}

// CloseFile flushes and closes the backing file, if any.
func (s *Store) CloseFile() error {
	if s.persist == nil {
		return nil
	}
	s.persist.mu.Lock()
	defer s.persist.mu.Unlock()
	if err := s.persist.w.Flush(); err != nil {
		return err
	}
	return s.persist.f.Close()
}

// sync flushes the journal buffer and fsyncs the backing file: one device
// force covering every record journaled so far. The group-commit combiner
// calls it once per cohort.
func (p *filePersist) sync() {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Errors here would mean the simulated stable storage lost its backing
	// device; surfacing them to the protocol is out of scope, but flush
	// failures would repeat and be caught on close.
	_ = p.w.Flush()
	//etxlint:allow lockheld — p.mu serializes journal writers against the device force; holding it across fsync is the invariant
	_ = p.f.Sync()
}

// journal writes one record; sync selects fdatasync-like durability (forced
// appends instead journal unsynced and let Store.force pay one combined
// device force afterwards).
func (p *filePersist) journal(tag byte, name string, rec []byte, sync bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var hdr [1 + 2*binary.MaxVarintLen64]byte
	hdr[0] = tag
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(len(name)))
	n += binary.PutUvarint(hdr[n:], uint64(len(rec)))
	p.w.Write(hdr[:n])
	p.w.WriteString(name)
	p.w.Write(rec)
	if sync {
		_ = p.w.Flush()
		//etxlint:allow lockheld — a forced append is durable before the journal lock releases, by definition
		_ = p.f.Sync()
	}
}

// replay loads the journal into the in-memory maps.
func replay(f *os.File, s *Store) error {
	r := bufio.NewReader(f)
	for {
		tag, err := r.ReadByte()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		nameLen, err := binary.ReadUvarint(r)
		if err != nil {
			return truncated(err)
		}
		recLen, err := binary.ReadUvarint(r)
		if err != nil {
			return truncated(err)
		}
		if nameLen > 1<<20 || recLen > 64<<20 {
			return errors.New("corrupt journal: oversized record")
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return truncated(err)
		}
		rec := make([]byte, recLen)
		if _, err := io.ReadFull(r, rec); err != nil {
			return truncated(err)
		}
		switch tag {
		case tagAppend:
			s.logs[string(name)] = append(s.logs[string(name)], rec)
		case tagPut:
			s.kv[string(name)] = rec
		case tagTrunc:
			delete(s.logs, string(name))
		default:
			return fmt.Errorf("corrupt journal: unknown tag %d", tag)
		}
	}
}

// truncated maps partial-final-record errors (a crash mid-append of an
// unforced record) to a clean stop: everything before the tear is intact,
// which is exactly the durability the protocols rely on (they only trust
// forced records).
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return nil
	}
	return err
}
