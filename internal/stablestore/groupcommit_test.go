package stablestore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitCombinesForces: with a batch window, N concurrent forced
// appends share device forces — the run finishes in a fraction of the
// serialized time and pays far fewer fsyncs than forces.
func TestGroupCommitCombinesForces(t *testing.T) {
	const n = 16
	const latency = 20 * time.Millisecond
	s := New(latency)
	s.SetBatchWindow(time.Millisecond)

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Append("wal", []byte(fmt.Sprintf("rec-%d", i)), true)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if got := s.ForcedWrites(); got != n {
		t.Fatalf("ForcedWrites = %d, want %d", got, n)
	}
	if syncs := s.Syncs(); syncs >= n {
		t.Errorf("Syncs = %d for %d forces: no combining happened", syncs, n)
	}
	// Serialized the run would take n*latency = 320ms; combined it needs a
	// handful of cohorts. Allow a wide margin for scheduling noise.
	if limit := n * latency / 2; elapsed >= limit {
		t.Errorf("elapsed %v, want well under the serialized %v", elapsed, n*latency)
	}
	if got := s.LogLen("wal"); got != n {
		t.Errorf("log has %d records, want %d", got, n)
	}
}

// TestBatchWindowZeroSerializes: window 0 is the pre-group-commit behaviour —
// every forced write pays its own device force.
func TestBatchWindowZeroSerializes(t *testing.T) {
	const n = 8
	const latency = 5 * time.Millisecond
	s := New(latency)

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Append("wal", []byte("rec"), true)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < n*latency {
		t.Errorf("elapsed %v < serialized %v: forces overlapped with window 0", elapsed, n*latency)
	}
	if syncs, forces := s.Syncs(), s.ForcedWrites(); syncs != forces {
		t.Errorf("Syncs = %d, ForcedWrites = %d: window 0 must not combine", syncs, forces)
	}
}

// TestMaxBatchCapsCohort: cohorts never exceed the configured cap.
func TestMaxBatchCapsCohort(t *testing.T) {
	const n = 12
	s := New(2 * time.Millisecond)
	s.SetBatchWindow(5 * time.Millisecond)
	s.SetMaxBatch(2)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Append("wal", []byte("rec"), true)
		}()
	}
	wg.Wait()
	if syncs := s.Syncs(); syncs < n/2 {
		t.Errorf("Syncs = %d for %d forces with MaxBatch 2, want >= %d", syncs, n, n/2)
	}
}

// TestSyncCountsAsForcedWrite: the batch entry point pays and counts like
// one forced write.
func TestSyncCountsAsForcedWrite(t *testing.T) {
	s := New(0)
	s.Append("wal", []byte("a"), false)
	s.Append("wal", []byte("b"), false)
	s.Sync()
	if got := s.ForcedWrites(); got != 1 {
		t.Errorf("ForcedWrites = %d after one Sync, want 1", got)
	}
	if got := s.TotalWrites(); got != 2 {
		t.Errorf("TotalWrites = %d, want 2", got)
	}
}

// TestGroupCommitDurableAcrossCrash is the durability oracle of the
// combiner: on a file-backed store with batching on, every record whose
// forced Append returned before the crash point must be recovered —
// including records that were committed as cohort followers of another
// leader's fsync. The crash is simulated by abandoning the store without
// flushing its journal buffer and reopening the file.
func TestGroupCommitDurableAcrossCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.journal")
	s, err := OpenFile(path, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	s.SetBatchWindow(200 * time.Microsecond)

	const writers, perWriter = 8, 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	returned := make(map[string]bool) // forced appends that completed
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := fmt.Sprintf("w%d-%d", w, i)
				s.Append("wal", []byte(rec), true)
				mu.Lock()
				returned[rec] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if syncs, forces := s.Syncs(), s.ForcedWrites(); syncs >= forces {
		t.Fatalf("Syncs = %d, ForcedWrites = %d: no record ever rode another leader's fsync", syncs, forces)
	}
	// Buffered-but-unsynced data must not be flushed by the "crash": append
	// an unforced record and drop the store without CloseFile.
	s.Append("wal", []byte("unforced-tail"), false)

	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseFile()
	recovered := make(map[string]bool)
	for _, rec := range re.ReadLog("wal") {
		recovered[string(rec)] = true
	}
	for rec := range returned {
		if !recovered[rec] {
			t.Errorf("forced record %q returned before the crash but was not recovered", rec)
		}
	}
	if recovered["unforced-tail"] {
		t.Error("unforced unsynced record survived the crash: the test did not actually tear the buffer")
	}
}
