package etx

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestRandomSeqBaseIsFreshPerIncarnation is the regression test for the
// client replay bug: the sequence base used to be time.Now().UnixNano(), so
// two dials within the clock's resolution — or a dial after a backwards
// clock step — reused a live incarnation's sequence numbers and were handed
// its cached results instead of executing. The crypto/rand derivation must
// produce distinct, bounded bases on every call, with no dependence on the
// wall clock at all.
func TestRandomSeqBaseIsFreshPerIncarnation(t *testing.T) {
	const draws = 256
	seen := make(map[uint64]bool, draws)
	for i := 0; i < draws; i++ {
		base, err := randomSeqBase()
		if err != nil {
			t.Fatal(err)
		}
		if base>>62 != 0 {
			t.Fatalf("base %d uses more than 62 bits; sequence headroom eroded", base)
		}
		if seen[base] {
			// 256 draws from 2^62 values collide with probability ~2^-48:
			// a duplicate here means the derivation is broken, not unlucky.
			t.Fatalf("draw %d repeated base %d", i, base)
		}
		seen[base] = true
	}
}

// TestReplayedResultsSurvivePromotion extends the replay guarantee above to
// the replicated data tier: results that committed on a shard's boot primary
// must be *replayed* — the same state, the same balance chain — by the
// promoted backup, never re-executed. The logic burns a strictly decreasing
// balance, so any re-execution after the promotion would restart the chain
// (a visible double-spend) rather than continue it.
func TestReplayedResultsSurvivePromotion(t *testing.T) {
	var executions atomic.Int64
	c, err := New(Config{
		DataServers:      1,
		ReplicaFactor:    2,
		Seed:             map[string]int64{"acct/alice": 100},
		SuspicionTimeout: 40 * time.Millisecond,
		ClientBackoff:    50 * time.Millisecond,
		Logic: func(ctx context.Context, tx *Tx, req []byte) ([]byte, error) {
			executions.Add(1)
			bal, err := tx.Add(ctx, 0, "acct/alice", -10)
			if err != nil {
				return nil, err
			}
			if err := tx.CheckAtLeast(ctx, 0, "acct/alice", 0); err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("balance %d", bal)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	issue := func(i int) string {
		t.Helper()
		res, err := c.Issue(ctx, 1, []byte(fmt.Sprintf("w%d", i)))
		if err != nil {
			t.Fatalf("issue %d: %v", i, err)
		}
		return string(res)
	}

	// Five sequential withdrawals on the boot primary: a deterministic
	// 90..50 balance chain.
	for i := 0; i < 5; i++ {
		if got, want := issue(i), fmt.Sprintf("balance %d", 90-10*i); got != want {
			t.Fatalf("pre-crash result %d = %q, want %q", i, got, want)
		}
	}

	// Kill the primary; the group's heartbeat detector must notice and the
	// backup (DBServer 2 of this 1-shard, factor-2 group) must take over.
	c.CrashDBServer(1)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if promos, _, _ := c.ReplicationStats(); promos == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backup never promoted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The chain must continue exactly where the dead primary left it: the
	// promoted backup replayed the five committed withdrawals from its
	// streamed log. A re-execution would answer "balance 90" again.
	for i := 5; i < 10; i++ {
		if got, want := issue(i), fmt.Sprintf("balance %d", 90-10*i); got != want {
			t.Fatalf("post-promotion result %d = %q, want %q", i, got, want)
		}
	}
	if bal, err := c.ReadInt(2, "acct/alice"); err != nil || bal != 0 {
		t.Fatalf("promoted backup balance = %d, %v; want 0", bal, err)
	}

	// Effects are exactly-once even though compute may retry: ten committed
	// withdrawals of 10 drained the account exactly, and the logic ran at
	// least once per request (retries are legal, silent re-commits are not).
	if n := executions.Load(); n < 10 {
		t.Fatalf("logic ran %d times for 10 requests", n)
	}
	promos, lats, _ := c.ReplicationStats()
	if promos != 1 || len(lats) != 1 {
		t.Fatalf("promotions = %d (latencies %v), want exactly 1", promos, lats)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
