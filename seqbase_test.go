package etx

import "testing"

// TestRandomSeqBaseIsFreshPerIncarnation is the regression test for the
// client replay bug: the sequence base used to be time.Now().UnixNano(), so
// two dials within the clock's resolution — or a dial after a backwards
// clock step — reused a live incarnation's sequence numbers and were handed
// its cached results instead of executing. The crypto/rand derivation must
// produce distinct, bounded bases on every call, with no dependence on the
// wall clock at all.
func TestRandomSeqBaseIsFreshPerIncarnation(t *testing.T) {
	const draws = 256
	seen := make(map[uint64]bool, draws)
	for i := 0; i < draws; i++ {
		base, err := randomSeqBase()
		if err != nil {
			t.Fatal(err)
		}
		if base>>62 != 0 {
			t.Fatalf("base %d uses more than 62 bits; sequence headroom eroded", base)
		}
		if seen[base] {
			// 256 draws from 2^62 values collide with probability ~2^-48:
			// a duplicate here means the derivation is broken, not unlucky.
			t.Fatalf("draw %d repeated base %d", i, base)
		}
		seen[base] = true
	}
}
