// Travel: the paper's motivating scenario — an end-user books a flight, a
// hotel and a rental car, each living in a different back-end database. The
// booking commits atomically across all three databases or not at all, and
// sold-out inventory is reported through a committed informational result
// (the paper's footnote-4 treatment of user-level aborts) instead of an
// exception the user would have to interpret.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"etx"
)

// itinerary is this application's result payload.
type itinerary struct {
	Booked   bool   `json:"booked"`
	SoldOut  string `json:"sold_out,omitempty"`
	Flight   string `json:"flight,omitempty"`
	Hotel    string `json:"hotel,omitempty"`
	Car      string `json:"car,omitempty"`
	SeatLeft int64  `json:"seats_left"`
}

func main() {
	c, err := etx.New(etx.Config{
		DataServers: 3, // flights on db 0, hotels on db 1, cars on db 2
		Seed: map[string]int64{
			"flight/LX1438": 2,
			"hotel/Beau":    2,
			"car/compact":   2,
		},
		Logic: bookTrip,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Two seats of everything: the first two bookings succeed, the third is
	// politely refused — exactly once each, with no double-bookings.
	for traveller := 1; traveller <= 3; traveller++ {
		res, err := c.Issue(ctx, 1, []byte(`{"trip":"GVA"}`))
		if err != nil {
			log.Fatal(err)
		}
		var it itinerary
		if err := json.Unmarshal(res, &it); err != nil {
			log.Fatal(err)
		}
		if it.Booked {
			fmt.Printf("traveller %d: booked %s + %s + %s (%d seats left)\n",
				traveller, it.Flight, it.Hotel, it.Car, it.SeatLeft)
		} else {
			fmt.Printf("traveller %d: sorry, %s is sold out\n", traveller, it.SoldOut)
		}
	}

	seats, _ := c.ReadInt(1, "flight/LX1438")
	rooms, _ := c.ReadInt(2, "hotel/Beau")
	cars, _ := c.ReadInt(3, "car/compact")
	fmt.Printf("inventory after the rush: seats=%d rooms=%d cars=%d\n", seats, rooms, cars)
	if err := c.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all e-Transaction properties hold")
}

// bookTrip books one unit of each item across the three databases.
func bookTrip(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
	items := []struct {
		db  int
		key string
	}{
		{0, "flight/LX1438"},
		{1, "hotel/Beau"},
		{2, "car/compact"},
	}
	// Availability pass first: if anything is sold out, compute a result
	// that "can actually run to completion" (footnote 4) — it touches
	// nothing, so the databases happily commit it.
	for _, it := range items {
		_, n, err := tx.Get(ctx, it.db, it.key)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return json.Marshal(itinerary{Booked: false, SoldOut: it.key})
		}
	}
	// Booking pass with commitment-time guards: concurrent bookings that
	// overshoot make the databases vote no, the try aborts and is retried —
	// where the availability pass then reports sold-out.
	var left int64
	for _, it := range items {
		n, err := tx.Add(ctx, it.db, it.key, -1)
		if err != nil {
			return nil, err
		}
		if err := tx.CheckAtLeast(ctx, it.db, it.key, 0); err != nil {
			return nil, err
		}
		if it.db == 0 {
			left = n
		}
	}
	return json.Marshal(itinerary{
		Booked: true, Flight: "LX1438", Hotel: "Beau", Car: "compact", SeatLeft: left,
	})
}
