// Bank: the paper's measured workload under concurrency — several clients
// hammer the same accounts while a database server crashes and recovers in
// the background. Money is conserved and every transfer happens exactly
// once, which is precisely what naive retry loops over at-most-once
// transactions cannot give you (the paper's "having the user charged twice"
// motivation).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"etx"
)

const (
	clients     = 3
	perClient   = 5
	amount      = 7
	initialBank = 10_000
)

func main() {
	c, err := etx.New(etx.Config{
		Clients: clients,
		Seed:    map[string]int64{"acct/bank": initialBank, "acct/merchant": 0},
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			// A little simulated SQL work spreads the run out so the
			// crash/recovery below lands in the middle of it.
			if err := tx.SimulateWork(ctx, 0, 10*time.Millisecond); err != nil {
				return nil, err
			}
			if _, err := tx.Add(ctx, 0, "acct/bank", -amount); err != nil {
				return nil, err
			}
			if err := tx.CheckAtLeast(ctx, 0, "acct/bank", 0); err != nil {
				return nil, err
			}
			total, err := tx.Add(ctx, 0, "acct/merchant", amount)
			if err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("merchant holds %d", total)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Crash and recover the database mid-run: committed transfers survive,
	// in-flight ones abort and retry, nothing is lost or doubled.
	go func() {
		time.Sleep(40 * time.Millisecond)
		fmt.Println("… crashing the database server …")
		c.CrashDBServer(1)
		time.Sleep(30 * time.Millisecond)
		fmt.Println("… recovering the database server …")
		if err := c.RecoverDBServer(1); err != nil {
			log.Fatal(err)
		}
	}()

	// Every client pipelines its whole workload in one batch: all transfers
	// are in flight concurrently on each handle, racing the crash/recovery
	// above — and each still commits exactly once.
	var wg sync.WaitGroup
	for i := 1; i <= clients; i++ {
		cl := c.Client(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batch := make([][]byte, perClient)
			for j := range batch {
				batch[j] = []byte("transfer")
			}
			if _, err := cl.IssueBatch(ctx, batch); err != nil {
				log.Fatalf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	bank, _ := c.ReadInt(1, "acct/bank")
	merchant, _ := c.ReadInt(1, "acct/merchant")
	fmt.Printf("bank=%d merchant=%d (sum %d)\n", bank, merchant, bank+merchant)

	wantMerchant := int64(clients * perClient * amount)
	if merchant != wantMerchant {
		log.Fatalf("exactly-once violated: merchant=%d, want %d", merchant, wantMerchant)
	}
	if bank+merchant != initialBank {
		log.Fatalf("money not conserved: %d", bank+merchant)
	}
	if err := c.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d transfers, each exactly once; all e-Transaction properties hold\n", clients*perClient)
}
