// Failover: the headline behaviour of the paper — the primary application
// server crashes in the middle of a request, a backup's cleaning thread
// takes over through the write-once registers, and the client still delivers
// the result exactly once, without resubmitting anything.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"etx"
)

func main() {
	c, err := etx.New(etx.Config{
		AppServers:       3,
		Seed:             map[string]int64{"acct/shop": 0, "acct/card": 500},
		SuspicionTimeout: 50 * time.Millisecond,
		ClientBackoff:    60 * time.Millisecond,
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			// A deliberately slow payment, so the crash lands mid-flight.
			if err := tx.SimulateWork(ctx, 0, 100*time.Millisecond); err != nil {
				return nil, err
			}
			if _, err := tx.Add(ctx, 0, "acct/card", -25); err != nil {
				return nil, err
			}
			if err := tx.CheckAtLeast(ctx, 0, "acct/card", 0); err != nil {
				return nil, err
			}
			total, err := tx.Add(ctx, 0, "acct/shop", 25)
			if err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("paid 25, shop total %d", total)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	done := make(chan struct{})
	var result []byte
	var issueErr error
	go func() {
		defer close(done)
		result, issueErr = c.Issue(ctx, 1, []byte("pay"))
	}()

	// Let the primary get into the computation, then kill it.
	time.Sleep(30 * time.Millisecond)
	fmt.Println("crashing the primary application server mid-request...")
	c.CrashAppServer(1)

	<-done
	if issueErr != nil {
		log.Fatal(issueErr)
	}
	fmt.Printf("client still delivered: %s\n", result)

	card, _ := c.ReadInt(1, "acct/card")
	shop, _ := c.ReadInt(1, "acct/shop")
	fmt.Printf("card=%d shop=%d (charged exactly once despite the crash)\n", card, shop)
	if card != 475 || shop != 25 {
		log.Fatalf("exactly-once violated: card=%d shop=%d", card, shop)
	}
	if err := c.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all e-Transaction properties hold")
}
