// Quickstart: a three-tier deployment in one process — three replicated
// application servers, one database server, one client — running a bank
// withdrawal exactly once.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"etx"
)

func main() {
	c, err := etx.New(etx.Config{
		Seed: map[string]int64{"acct/alice": 100},
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			// Withdraw 10 from alice, refusing overdrafts at commitment time.
			balance, err := tx.Add(ctx, 0, "acct/alice", -10)
			if err != nil {
				return nil, err
			}
			if err := tx.CheckAtLeast(ctx, 0, "acct/alice", 0); err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("new balance: %d", balance)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 1; i <= 3; i++ {
		result, err := c.Issue(ctx, 1, []byte("withdraw"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %d -> %s\n", i, result)
	}

	balance, err := c.ReadInt(1, "acct/alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database says alice has %d (exactly three withdrawals)\n", balance)

	if err := c.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all e-Transaction properties hold")
}
