// Quickstart: a three-tier deployment in one process — three replicated
// application servers, one database server, one client — running bank
// withdrawals exactly once, first sequentially, then pipelined through the
// same client handle.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"etx"
)

func main() {
	c, err := etx.New(etx.Config{
		Seed: map[string]int64{"acct/alice": 100},
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			// Withdraw 10 from alice, refusing overdrafts at commitment time.
			balance, err := tx.Add(ctx, 0, "acct/alice", -10)
			if err != nil {
				return nil, err
			}
			if err := tx.CheckAtLeast(ctx, 0, "acct/alice", 0); err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("new balance: %d", balance)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A Client handle is safe for concurrent use; start with the blocking
	// one-at-a-time form.
	cl := c.Client(1)
	for i := 1; i <= 3; i++ {
		result, err := cl.Issue(ctx, []byte("withdraw"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %d -> %s\n", i, result)
	}

	// Now pipeline a batch: all five withdrawals are in flight on the same
	// handle at once, and each still commits exactly once.
	batch := make([][]byte, 5)
	for i := range batch {
		batch[i] = []byte("withdraw")
	}
	results, err := cl.IssueBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("pipelined -> %s\n", r)
	}

	balance, err := c.ReadInt(1, "acct/alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database says alice has %d (exactly eight withdrawals)\n", balance)

	if err := c.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all e-Transaction properties hold")
}
