package etx_test

import (
	"context"
	"fmt"
	"log"

	"etx"
)

// Example demonstrates the exactly-once guarantee end to end: a bank
// withdrawal that survives a primary crash without double-charging.
func Example() {
	c, err := etx.New(etx.Config{
		Seed: map[string]int64{"acct/alice": 100},
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			balance, err := tx.Add(ctx, 0, "acct/alice", -10)
			if err != nil {
				return nil, err
			}
			if err := tx.CheckAtLeast(ctx, 0, "acct/alice", 0); err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("balance %d", balance)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	res, err := c.Issue(context.Background(), 1, []byte("withdraw"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(res))

	// A crashed application server changes nothing for the caller.
	c.CrashAppServer(1)
	res, err = c.Issue(context.Background(), 1, []byte("withdraw"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(res))

	// Output:
	// balance 90
	// balance 80
}

// ExampleCluster_RecoverDBServer shows database crash recovery: committed
// state survives in the write-ahead log and the protocol resumes.
func ExampleCluster_RecoverDBServer() {
	c, err := etx.New(etx.Config{
		Seed: map[string]int64{"counter": 0},
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			n, err := tx.Add(ctx, 0, "counter", 1)
			if err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("%d", n)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	res, _ := c.Issue(ctx, 1, nil)
	fmt.Println("before crash:", string(res))

	c.CrashDBServer(1)
	if err := c.RecoverDBServer(1); err != nil {
		log.Fatal(err)
	}

	res, err = c.Issue(ctx, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after recovery:", string(res))

	// Output:
	// before crash: 1
	// after recovery: 2
}

// ExampleTx_CheckAtLeast shows commitment-time guards: the databases refuse
// to commit a try whose guard is violated, which is how the paper models
// user-level aborts.
func ExampleTx_CheckAtLeast() {
	c, err := etx.New(etx.Config{
		Seed: map[string]int64{"seats": 1},
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			// Check availability first (the paper's footnote 4): if nothing
			// is left, return an informational result that commits cleanly.
			_, n, err := tx.Get(ctx, 0, "seats")
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return []byte("sold out"), nil
			}
			if _, err := tx.Add(ctx, 0, "seats", -1); err != nil {
				return nil, err
			}
			if err := tx.CheckAtLeast(ctx, 0, "seats", 0); err != nil {
				return nil, err // overbooked: this try is refused and retried
			}
			return []byte("booked"), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		res, err := c.Issue(ctx, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(res))
	}

	// Output:
	// booked
	// sold out
}
