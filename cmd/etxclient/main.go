// Command etxclient issues e-Transactions against a TCP deployment through
// the public etx.Dial API and prints the exactly-once results. It keeps
// retrying behind the scenes (the paper's client algorithm), so it can be
// started before the servers, pointed at a crashed primary, or raced against
// failovers — every printed result is committed exactly once regardless.
//
// With -inflight K > 1 the requests are pipelined: up to K are outstanding on
// the single connection at once, which multiplies throughput without giving
// up any of the exactly-once guarantees.
//
// The servers answer on the address given by -listen, so the deployment's
// etxappserver processes must carry this client in their -clients address
// book, e.g. -clients "1=:7301".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"etx"
	"etx/internal/placement"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("etxclient: ", err)
	}
}

func run() error {
	idx := flag.Int("id", 1, "client index (1-based; must match the servers' -clients book)")
	listen := flag.String("listen", ":7301", "listen address (results arrive here)")
	appSpec := flag.String("appservers", "", "address book, e.g. 1=:7101,2=:7102,3=:7103")
	account := flag.String("account", "alice", "account to update")
	amount := flag.Int64("amount", -10, "amount to add (negative = withdrawal)")
	count := flag.Int("count", 1, "number of requests to issue")
	inflight := flag.Int("inflight", 1, "maximum requests in flight at once (pipelining)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline")
	shards := flag.Int("shards", 0, "deployment shard count: spread requests round-robin over one derived account per shard (<account>-N; they start at 0, so use deposits unless seeded)")
	placeSpec := flag.String("placement", "hash", "partitioner the servers run: hash | range:b1,b2,...")
	flag.Parse()

	if *inflight < 1 {
		*inflight = 1
	}
	// With -shards, derive one account per shard from the base name so the
	// round-robin workload exercises every shard — under the same placement
	// the servers route by, so request i%N is a single-shard transaction on
	// shard i%N.
	accounts := []string{*account}
	if *shards > 0 {
		policy, err := placement.Parse(*placeSpec, *shards)
		if err != nil {
			return err
		}
		accounts = make([]string, *shards)
		for s := 0; s < *shards; s++ {
			name, ok := placement.KeyedName(policy, s, *account+"-",
				func(n string) string { return "acct/" + n })
			if !ok {
				return fmt.Errorf("no account named %s-N is homed on shard %d under %s; pick accounts manually", *account, s, policy)
			}
			accounts[s] = name
		}
	}
	cl, err := etx.Dial(etx.DialConfig{
		ID:          *idx,
		Listen:      *listen,
		AppServers:  *appSpec,
		Backoff:     300 * time.Millisecond,
		MaxInFlight: *inflight,
		Shards:      *shards,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	type outcome struct {
		res    []byte
		dur    time.Duration
		err    error
		issued bool
	}
	outcomes := make([]outcome, *count)
	reqFor := func(i int) []byte {
		return []byte(fmt.Sprintf("%s:%d", accounts[i%len(accounts)], *amount))
	}
	// inflight workers pull request slots from a shared counter; after the
	// first failure no new requests are started (in-flight ones finish), so
	// a dead deployment costs one timeout, not count of them.
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *inflight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *count || failed.Load() {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), *timeout)
				start := time.Now()
				res, err := cl.Issue(ctx, reqFor(i))
				cancel()
				outcomes[i] = outcome{res: res, dur: time.Since(start), err: err, issued: true}
				if err != nil {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	// Report every outcome before failing: requests racing an error may well
	// have committed (exactly-once holds per request), and the user needs to
	// know which transfers went through.
	var firstErr error
	issued := 0
	for i, o := range outcomes {
		switch {
		case !o.issued:
		case o.err != nil:
			issued++
			fmt.Printf("request %d -> ERROR: %v\n", i+1, o.err)
			if firstErr == nil {
				firstErr = fmt.Errorf("request %d: %w", i+1, o.err)
			}
		default:
			issued++
			fmt.Printf("request %d -> %s (%.1fms)\n", i+1, o.res, float64(o.dur)/1e6)
		}
	}
	if issued < *count {
		fmt.Printf("%d request(s) not issued (aborted after first failure)\n", *count-issued)
	}
	if firstErr != nil {
		return firstErr
	}
	if *count > 1 {
		fmt.Printf("%d requests in %.1fms (%.1f req/s, %d in flight)\n",
			*count, float64(elapsed)/1e6, float64(*count)/elapsed.Seconds(), *inflight)
	}
	return nil
}
