// Command etxclient issues one e-Transaction against a TCP deployment and
// prints the exactly-once result. It keeps retrying behind the scenes (the
// paper's client algorithm), so it can be started before the servers, pointed
// at a crashed primary, or raced against failovers — the printed result is
// committed exactly once regardless.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/rchan"
	"etx/internal/transport/tcptransport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("etxclient: ", err)
	}
}

func run() error {
	idx := flag.Int("id", 1, "client index (1-based)")
	listen := flag.String("listen", ":7301", "listen address (results arrive here)")
	appSpec := flag.String("appservers", "", "address book, e.g. 1=:7101,2=:7102,3=:7103")
	account := flag.String("account", "alice", "account to update")
	amount := flag.Int64("amount", -10, "amount to add (negative = withdrawal)")
	count := flag.Int("count", 1, "number of requests to issue")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline")
	flag.Parse()

	apps, err := tcptransport.ParsePeers(id.RoleAppServer, *appSpec)
	if err != nil {
		return err
	}
	if len(apps) == 0 {
		return fmt.Errorf("need an -appservers address book")
	}

	self := id.Client(*idx)
	ep, err := tcptransport.Listen(tcptransport.Config{Self: self, Listen: *listen, Peers: apps})
	if err != nil {
		return err
	}
	defer ep.Close()

	var order []id.NodeID
	for i := 1; i <= len(apps); i++ {
		order = append(order, id.AppServer(i))
	}
	cl, err := core.NewClient(core.ClientConfig{
		Self:       self,
		AppServers: order,
		Endpoint:   rchan.Wrap(ep, 100*time.Millisecond),
		Backoff:    300 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cl.Stop()

	for i := 0; i < *count; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		t0 := time.Now()
		req := fmt.Sprintf("%s:%d", *account, *amount)
		res, err := cl.Issue(ctx, []byte(req))
		cancel()
		if err != nil {
			return fmt.Errorf("request %d: %w", i+1, err)
		}
		fmt.Printf("request %d -> %s (%.1fms)\n", i+1, res, float64(time.Since(t0))/1e6)
	}
	return nil
}
