// Command etxappserver runs one replicated application server of the
// e-Transaction protocol over TCP, for multi-process deployments.
//
// Example three-server deployment (one database, one client):
//
//	etxdbserver  -id 1 -listen :7201 -appservers "1=:7101,2=:7102,3=:7103" -data db1.journal &
//	etxappserver -id 1 -listen :7101 -appservers "1=:7101,2=:7102,3=:7103" -dbservers "1=:7201" -clients "1=:7301" &
//	etxappserver -id 2 -listen :7102 -appservers "1=:7101,2=:7102,3=:7103" -dbservers "1=:7201" -clients "1=:7301" &
//	etxappserver -id 3 -listen :7103 -appservers "1=:7101,2=:7102,3=:7103" -dbservers "1=:7201" -clients "1=:7301" &
//	etxclient    -listen :7301 -appservers "1=:7101,2=:7102,3=:7103" -account alice -amount -10
//
// The built-in business logic is the paper's bank workload: the request
// "account:amount" adds amount to acct/<account> on database 1 and refuses
// overdrafts at commitment time.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/placement"
	"etx/internal/rchan"
	"etx/internal/transport/tcptransport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("etxappserver: ", err)
	}
}

// bankLogic parses "account:amount" and updates the account on its home
// shard: the keyed Tx API routes through placement, so the whole
// transaction stays on one database server and commits through the
// one-shard fast path.
func bankLogic() core.Logic {
	return core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		account, amountStr, ok := strings.Cut(string(req), ":")
		if !ok {
			return nil, fmt.Errorf("bad request %q (want account:amount)", req)
		}
		amount, err := strconv.ParseInt(amountStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad amount: %w", err)
		}
		key := "acct/" + account
		balance, err := tx.Add(ctx, key, amount)
		if err != nil {
			return nil, err
		}
		if amount < 0 {
			if err := tx.CheckAtLeast(ctx, key, 0); err != nil {
				return nil, err
			}
		}
		return []byte(fmt.Sprintf("%s=%d", account, balance)), nil
	})
}

func run() error {
	idx := flag.Int("id", 1, "application server index (1-based)")
	listen := flag.String("listen", ":7101", "listen address")
	appSpec := flag.String("appservers", "", "address book, e.g. 1=:7101,2=:7102,3=:7103")
	dbSpec := flag.String("dbservers", "", "address book, e.g. 1=:7201")
	clSpec := flag.String("clients", "", "client address book, e.g. 1=:7301,2=:7302")
	suspect := flag.Duration("suspect", 500*time.Millisecond, "failure-suspicion timeout")
	workers := flag.Int("workers", 1, "compute threads (raise for pipelined clients)")
	fsync := flag.Duration("fsync", 0, "simulated forced-write latency of the deployment; accepted on every tier so one flag list drives all binaries — the cost itself is paid by etxdbserver -fsync (this server is stateless)")
	batchWindow := flag.Duration("batch-window", 0, "outbound aggregation window: >0 coalesces Prepare/Decide fan-out to the same shard into batch envelopes; 0 sends each message directly")
	maxBatch := flag.Int("max-batch", 0, "cap on one outbound batch envelope (0 = default 64)")
	cohortWindow := flag.Duration("cohort-window", 0, "cohort-consensus window: >0 lets concurrent wo-register writes share one consensus instance per cohort; 0 runs one instance per write (every app server must agree)")
	maxCohort := flag.Int("max-cohort", 0, "cap on register ops per consensus slot (0 = default 64)")
	adaptive := flag.Bool("adaptive", false, "self-tuning batching: sample the in-flight depth and collapse batch/cohort caps at depth 1, widening them under pipelining (unset windows default to 500µs/100µs; every app server must agree)")
	writeTimeout := flag.Duration("write-timeout", 0, "transport write deadline: a peer that stops reading trips it and the connection is dropped (0 = default 5s)")
	retainSlots := flag.Int("retain-slots", 0, "batch-log retention tail: >0 truncates decided consensus slots below the cluster-wide applied watermark minus this many (laggards catch up via checkpoint transfer); 0 retains every slot forever (every app server must agree)")
	shards := flag.Int("shards", 0, "key-shard the database tier over the first N -dbservers (0 = all of them)")
	placeSpec := flag.String("placement", "hash", "partitioner: hash | range:b1,b2,... (every app server must agree)")
	replicas := flag.Int("replicas", 1, "data-tier replica factor: member k (0-based) of shard s is dbserver id s+1+k*shards, all listed in -dbservers; >1 routes through the epoch-stamped view so promoted backups take over their shard's traffic (every app server must agree)")
	flag.Parse()

	apps, err := tcptransport.ParsePeers(id.RoleAppServer, *appSpec)
	if err != nil {
		return err
	}
	dbs, err := tcptransport.ParsePeers(id.RoleDBServer, *dbSpec)
	if err != nil {
		return err
	}
	clients, err := tcptransport.ParsePeers(id.RoleClient, *clSpec)
	if err != nil {
		return err
	}
	if len(apps) == 0 || len(dbs) == 0 {
		return fmt.Errorf("need -appservers and -dbservers address books")
	}
	dbList := tcptransport.SortedPeers(dbs)
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be at least 1, got %d", *replicas)
	}
	if *shards <= 0 {
		// On a replicated tier the book lists every group member, so the
		// natural default is one shard per replica-factor-sized slice.
		if len(dbList)%*replicas != 0 {
			return fmt.Errorf("-dbservers lists %d servers, not a multiple of -replicas %d; pass -shards explicitly", len(dbList), *replicas)
		}
		*shards = len(dbList) / *replicas
	}
	if *shards > len(dbList) {
		return fmt.Errorf("-shards %d exceeds the %d servers in -dbservers", *shards, len(dbList))
	}
	policy, err := placement.Parse(*placeSpec, *shards)
	if err != nil {
		return err
	}
	pmap, err := placement.NewMap(policy, dbList[:*shards])
	if err != nil {
		return err
	}
	// Shard s is served by the s-th entry of the sorted -dbservers book,
	// while etxdbserver's per-shard seeding assumes server -id K owns shard
	// K-1. Both hold only when the book's ids run 1..N; warn loudly when
	// they do not, because seeded keys would land on the wrong shard.
	for s, db := range dbList[:*shards] {
		if db.Index != s+1 {
			log.Printf("warning: shard %d is served by %s; etxdbserver -shards seeding assumes ids 1..%d, so seeded keys may sit on the wrong server", s, db, *shards)
		}
	}
	// Replicated data tier: the epoch-stamped view starts at the boot
	// primaries (the placement map's targets) and advances as promoted
	// backups announce NewPrimary. Routing stays keyed to boot identities;
	// the view only translates the delivery target, so the paper's
	// participant lists never change shape.
	var view *placement.View
	if *replicas > 1 {
		groups := make([][]id.NodeID, *shards)
		for s := 0; s < *shards; s++ {
			for k := 0; k < *replicas; k++ {
				member := id.DBServer(s + 1 + k**shards)
				if _, ok := dbs[member]; !ok {
					return fmt.Errorf("-replicas %d needs dbserver id %d (member %d of shard %d) in -dbservers", *replicas, member.Index, k, s)
				}
				groups[s] = append(groups[s], member)
			}
		}
		view, err = placement.NewView(groups)
		if err != nil {
			return err
		}
	}
	if len(clients) == 0 {
		// Results to unknown peers are silently dropped (fair loss), so an
		// empty book means clients hang until their deadlines. Warn loudly.
		log.Printf("warning: no -clients address book; results cannot be delivered to any client")
	}

	self := id.AppServer(*idx)
	ep, err := tcptransport.Listen(tcptransport.Config{
		Self:   self,
		Listen: *listen,
		// Results go back to the addresses in the -clients book; peers and
		// databases come from theirs.
		Peers:        tcptransport.Merge(apps, dbs, clients),
		WriteTimeout: *writeTimeout,
	})
	if err != nil {
		return err
	}
	defer ep.Close()

	if *fsync > 0 {
		// This tier is stateless (the paper's model): the simulated fsync is
		// paid at the databases. Accepting the flag keeps one flag list
		// usable across all binaries; remind the operator where it acts.
		log.Printf("note: -fsync %v is a database-tier cost; pass it to etxdbserver (stateless app servers pay none)", *fsync)
	}
	srv, err := core.NewAppServer(core.AppServerConfig{
		Self:            self,
		AppServers:      tcptransport.SortedPeers(apps),
		DataServers:     dbList,
		Placement:       pmap,
		View:            view,
		Endpoint:        rchan.Wrap(ep, 100*time.Millisecond),
		Logic:           bankLogic(),
		SuspectTimeout:  *suspect,
		Workers:         *workers,
		BatchWindow:     *batchWindow,
		MaxBatch:        *maxBatch,
		CohortWindow:    *cohortWindow,
		MaxCohort:       *maxCohort,
		AdaptiveWindows: *adaptive,
		RetainSlots:     *retainSlots,
	})
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Stop()
	log.Printf("appserver-%d listening on %s (%d app servers, %d db servers, %s)",
		*idx, ep.Addr(), len(apps), len(dbs), pmap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("appserver-%d shutting down", *idx)
	return nil
}
