// Command etxappserver runs one replicated application server of the
// e-Transaction protocol over TCP, for multi-process deployments.
//
// Example three-server deployment (one database, one client):
//
//	etxdbserver  -id 1 -listen :7201 -appservers "1=:7101,2=:7102,3=:7103" -data db1.journal &
//	etxappserver -id 1 -listen :7101 -appservers "1=:7101,2=:7102,3=:7103" -dbservers "1=:7201" -clients "1=:7301" &
//	etxappserver -id 2 -listen :7102 -appservers "1=:7101,2=:7102,3=:7103" -dbservers "1=:7201" -clients "1=:7301" &
//	etxappserver -id 3 -listen :7103 -appservers "1=:7101,2=:7102,3=:7103" -dbservers "1=:7201" -clients "1=:7301" &
//	etxclient    -listen :7301 -appservers "1=:7101,2=:7102,3=:7103" -account alice -amount -10
//
// The built-in business logic is the paper's bank workload: the request
// "account:amount" adds amount to acct/<account> on database 1 and refuses
// overdrafts at commitment time.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/rchan"
	"etx/internal/transport/tcptransport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("etxappserver: ", err)
	}
}

// bankLogic parses "account:amount" and updates the account on database 1.
func bankLogic() core.Logic {
	return core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		account, amountStr, ok := strings.Cut(string(req), ":")
		if !ok {
			return nil, fmt.Errorf("bad request %q (want account:amount)", req)
		}
		amount, err := strconv.ParseInt(amountStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad amount: %w", err)
		}
		db := tx.DBs()[0]
		rep, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: "acct/" + account, Delta: amount})
		if err != nil {
			return nil, err
		}
		if !rep.OK {
			return nil, fmt.Errorf("update failed: %s", rep.Err)
		}
		if amount < 0 {
			if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpCheckGE, Key: "acct/" + account, Delta: 0}); err != nil {
				return nil, err
			}
		}
		return []byte(fmt.Sprintf("%s=%d", account, rep.Num)), nil
	})
}

func run() error {
	idx := flag.Int("id", 1, "application server index (1-based)")
	listen := flag.String("listen", ":7101", "listen address")
	appSpec := flag.String("appservers", "", "address book, e.g. 1=:7101,2=:7102,3=:7103")
	dbSpec := flag.String("dbservers", "", "address book, e.g. 1=:7201")
	clSpec := flag.String("clients", "", "client address book, e.g. 1=:7301,2=:7302")
	suspect := flag.Duration("suspect", 500*time.Millisecond, "failure-suspicion timeout")
	workers := flag.Int("workers", 1, "compute threads (raise for pipelined clients)")
	flag.Parse()

	apps, err := tcptransport.ParsePeers(id.RoleAppServer, *appSpec)
	if err != nil {
		return err
	}
	dbs, err := tcptransport.ParsePeers(id.RoleDBServer, *dbSpec)
	if err != nil {
		return err
	}
	clients, err := tcptransport.ParsePeers(id.RoleClient, *clSpec)
	if err != nil {
		return err
	}
	if len(apps) == 0 || len(dbs) == 0 {
		return fmt.Errorf("need -appservers and -dbservers address books")
	}
	if len(clients) == 0 {
		// Results to unknown peers are silently dropped (fair loss), so an
		// empty book means clients hang until their deadlines. Warn loudly.
		log.Printf("warning: no -clients address book; results cannot be delivered to any client")
	}

	self := id.AppServer(*idx)
	ep, err := tcptransport.Listen(tcptransport.Config{
		Self:   self,
		Listen: *listen,
		// Results go back to the addresses in the -clients book; peers and
		// databases come from theirs.
		Peers: tcptransport.Merge(apps, dbs, clients),
	})
	if err != nil {
		return err
	}
	defer ep.Close()

	srv, err := core.NewAppServer(core.AppServerConfig{
		Self:           self,
		AppServers:     tcptransport.SortedPeers(apps),
		DataServers:    tcptransport.SortedPeers(dbs),
		Endpoint:       rchan.Wrap(ep, 100*time.Millisecond),
		Logic:          bankLogic(),
		SuspectTimeout: *suspect,
		Workers:        *workers,
	})
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Stop()
	log.Printf("appserver-%d listening on %s (%d app servers, %d db servers)",
		*idx, ep.Addr(), len(apps), len(dbs))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("appserver-%d shutting down", *idx)
	return nil
}
