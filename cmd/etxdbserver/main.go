// Command etxdbserver runs one database server (the XA engine with
// write-ahead logging) over TCP. Its stable storage lives in the -data
// journal file, so killing and restarting the process exercises real crash
// recovery: in-doubt branches are restored with their locks and a [Ready]
// notification announces the new incarnation to the application servers.
//
// With a -group address book the server is one member of a replica group:
// the primary (the lowest id, or any member started without -backup)
// streams every appended log record to the other members, and a member
// started with -backup applies the stream to its own journal and promotes
// itself — replaying the log, re-seeding in-doubt branches, announcing the
// new epoch — when the primary stops heartbeating. The application servers
// must run with a matching -replicas so their epoch-stamped view routes
// around the deposed primary.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the server drains its
// mailbox to a quiet point, stops, forces a final stable-storage Sync and
// closes the transport, so soak scripts can cycle servers cleanly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/placement"
	"etx/internal/rchan"
	"etx/internal/repl"
	"etx/internal/stablestore"
	"etx/internal/transport"
	"etx/internal/transport/tcptransport"
	"etx/internal/wal"
	"etx/internal/xadb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("etxdbserver: ", err)
	}
}

func run() error {
	idx := flag.Int("id", 1, "database server index (1-based)")
	listen := flag.String("listen", ":7201", "listen address")
	appSpec := flag.String("appservers", "", "address book, e.g. 1=:7101,2=:7102,3=:7103")
	dataPath := flag.String("data", "etxdb.journal", "stable-storage journal file")
	fsync := flag.Duration("fsync", 0, "simulated forced-write latency on top of the real fsync (reproduces the bench commit bottleneck)")
	batchWindow := flag.Duration("batch-window", 0, "group-commit window: >0 lets one fsync cover a cohort of concurrent forced writes and serves Prepare/Decide rounds in batches; 0 keeps serialized per-write forces")
	maxBatch := flag.Int("max-batch", 0, "cap on group-commit cohorts and mailbox batches (0 = default 64)")
	queueExec := flag.Bool("queue-exec", false, "queue-oriented deterministic execution: plan mailbox drains into per-key run queues and execute without lock-manager acquisition (commitment gated on chain order instead)")
	adaptive := flag.Bool("adaptive", false, "self-tuning group commit: a lone cohort leader skips the accumulation window while pipelined forces still share fsyncs (match the app servers' -adaptive)")
	writeTimeout := flag.Duration("write-timeout", 0, "transport write deadline: a peer that stops reading trips it and the connection is dropped (0 = default 5s)")
	seedAcct := flag.String("seed", "alice=100,bob=100", "initial accounts (name=balance,...)")
	shards := flag.Int("shards", 0, "shard count of the deployment: seed only the accounts this server owns (server -id K owns shard K-1, so ids must run 1..shards); 0 seeds everything")
	placeSpec := flag.String("placement", "hash", "partitioner: hash | range:b1,b2,... (must match the app servers' -placement)")
	groupSpec := flag.String("group", "", "replica-group address book of this server's shard, itself included, e.g. 1=:7201,4=:7204; ascending id is promotion order and the lowest id is the boot primary")
	backup := flag.Bool("backup", false, "run as a backup applier of -group: apply the primary's record stream to -data and promote on suspicion instead of serving transactions")
	suspect := flag.Duration("suspect", 500*time.Millisecond, "replica-group failure-suspicion timeout (only meaningful with -group)")
	drainWait := flag.Duration("drain", 5*time.Second, "graceful-shutdown bound: how long SIGINT/SIGTERM waits for the mailbox to quiesce before stopping")
	flag.Parse()

	apps, err := tcptransport.ParsePeers(id.RoleAppServer, *appSpec)
	if err != nil {
		return err
	}
	if len(apps) == 0 {
		return fmt.Errorf("need an -appservers address book")
	}
	groupBook, err := tcptransport.ParsePeers(id.RoleDBServer, *groupSpec)
	if err != nil {
		return err
	}
	group := tcptransport.SortedPeers(groupBook)
	self := id.DBServer(*idx)
	if len(group) > 0 {
		found := false
		for _, m := range group {
			if m == self {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("-group %q does not contain this server (-id %d)", *groupSpec, *idx)
		}
	}
	if *backup && len(group) < 2 {
		return fmt.Errorf("-backup needs a -group of at least two members")
	}

	// Recovery is real here: if the journal already has content, this start
	// is a recovery and the engine announces Ready.
	recovery := false
	if st, err := os.Stat(*dataPath); err == nil && st.Size() > 0 {
		recovery = true
	}
	store, err := stablestore.OpenFile(*dataPath, 0)
	if err != nil {
		return err
	}
	defer store.CloseFile()
	// The simulated fsync cost and the group-commit knobs are plain store
	// settings, so a TCP deployment can reproduce the bench bottleneck (and
	// its group-commit fix) on real sockets.
	if *adaptive && *batchWindow <= 0 {
		*batchWindow = 500 * time.Microsecond
	}
	serveBatch := 0
	if *batchWindow > 0 {
		serveBatch = *maxBatch
		if serveBatch <= 0 {
			serveBatch = 64
		}
	}
	store.SetForceLatency(*fsync)
	store.SetBatchWindow(*batchWindow)
	store.SetMaxBatch(serveBatch)
	// Adaptive keeps the full window for pipelined forces but lets a lone
	// group-commit leader skip the accumulation sleep entirely.
	store.SetAdaptive(*adaptive)

	ep, err := tcptransport.Listen(tcptransport.Config{
		Self:         self,
		Listen:       *listen,
		Peers:        tcptransport.Merge(apps, groupBook),
		WriteTimeout: *writeTimeout,
	})
	if err != nil {
		return err
	}
	defer ep.Close()
	endpoint := rchan.Wrap(ep, 100*time.Millisecond)
	appList := tcptransport.SortedPeers(apps)

	// startPrimary opens the engine over store and serves the shard. On a
	// replicated deployment it also streams every appended log record to
	// the group peers (promotion order is ascending id, matching the
	// in-process cluster's numbering).
	var srvMu sync.Mutex
	var srv *core.DataServer
	startPrimary := func(recovery bool, epoch uint64) error {
		var streamer *repl.Streamer
		if len(group) > 1 {
			var peers []id.NodeID
			for _, m := range group {
				if m != self {
					peers = append(peers, m)
				}
			}
			streamer = repl.NewStreamer(repl.StreamerConfig{
				Self:    self,
				Backups: peers,
				Send: func(to id.NodeID, p msg.Payload) error {
					return endpoint.Send(msg.Envelope{To: to, Payload: p})
				},
			})
		}
		xcfg := xadb.Config{Self: self, QueueExec: *queueExec}
		if streamer != nil {
			xcfg.Replicate = streamer.Replicate
		}
		engine, err := xadb.Open(store, xcfg)
		if err != nil {
			return err
		}
		if streamer != nil {
			streamer.SetInc(engine.Incarnation())
			if recovery {
				recs, err := wal.New(store).Records()
				if err != nil {
					return fmt.Errorf("prime stream: %w", err)
				}
				streamer.Prime(recs)
			}
			streamer.Start()
		}
		if !recovery {
			seed, err := parseSeed(*seedAcct)
			if err != nil {
				return err
			}
			if *shards > 0 {
				// Per-shard seeding: this server holds only the keys whose home
				// shard it is. The shard of server -id N is N-1, matching the
				// app servers' placement over the sorted -dbservers book — the
				// partitioner must therefore be the same on both tiers.
				policy, err := placement.Parse(*placeSpec, *shards)
				if err != nil {
					return err
				}
				if *idx > *shards {
					log.Printf("warning: -id %d owns no shard of a %d-shard tier; seeding nothing", *idx, *shards)
				}
				own := seed[:0]
				for _, w := range seed {
					if policy.ShardFor(w.Key) == *idx-1 {
						own = append(own, w)
					}
				}
				seed = own
			}
			engine.Seed(seed)
		}
		s, err := core.NewDataServer(core.DataServerConfig{
			Self:       self,
			AppServers: appList,
			Engine:     engine,
			Endpoint:   endpoint,
			Recovery:   recovery,
			MaxBatch:   serveBatch,
			QueueExec:  *queueExec,
			Repl:       streamer,
			Epoch:      epoch,
		})
		if err != nil {
			return err
		}
		s.Start()
		srvMu.Lock()
		srv = s
		srvMu.Unlock()
		log.Printf("dbserver-%d serving on %s (incarnation %d, recovery=%v, %d in-doubt branches, %d group peers)",
			*idx, ep.Addr(), engine.Incarnation(), recovery, len(engine.InDoubt()), len(group))
		return nil
	}

	var applier *repl.Backup
	if *backup {
		// Backup role: apply the primary's stream to this journal, monitor
		// the group with heartbeats, take the shard over when the current
		// primary is suspected. No engine runs until promotion; the seed
		// arrives as the first streamed record.
		applier = repl.NewBackup(repl.BackupConfig{
			Self:           self,
			Shard:          group[0].Index - 1,
			Group:          group,
			AppServers:     appList,
			Endpoint:       endpoint,
			Store:          store,
			SuspectTimeout: *suspect,
			TakeOver: func(epoch uint64) error {
				return startPrimary(true, epoch)
			},
			OnPromote: func(lat time.Duration) {
				log.Printf("dbserver-%d promoted to shard primary (drain-to-takeover %v)", *idx, lat)
			},
			Logf: log.Printf,
		})
		applier.Start()
		log.Printf("dbserver-%d backing up shard %d on %s (group %v)", *idx, group[0].Index-1, ep.Addr(), group)
	} else {
		if err := startPrimary(recovery, 1); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful shutdown: quiesce the mailbox so in-flight Prepare/Decide
	// rounds finish, stop the serve loop, force a last Sync so everything
	// journaled is durable, then close the transport.
	log.Printf("dbserver-%d shutting down: draining mailbox", *idx)
	if applier != nil {
		applier.Stop()
	}
	srvMu.Lock()
	s := srv
	srvMu.Unlock()
	if s != nil {
		s.Drain(200*time.Millisecond, *drainWait)
		s.Stop()
	}
	store.Sync()
	if err := ep.Close(); err != nil && err != transport.ErrClosed {
		log.Printf("dbserver-%d transport close: %v", *idx, err)
	}
	log.Printf("dbserver-%d shutdown complete (journal synced)", *idx)
	return nil
}

func parseSeed(spec string) ([]kv.Write, error) {
	var out []kv.Write
	if spec == "" {
		return out, nil
	}
	for _, part := range splitComma(spec) {
		var name string
		var bal int64
		if n, err := fmt.Sscanf(part, "%s", &name); n != 1 || err != nil {
			return nil, fmt.Errorf("malformed seed %q", part)
		}
		if i := indexByte(name, '='); i > 0 {
			var err error
			bal, err = parseInt(name[i+1:])
			if err != nil {
				return nil, fmt.Errorf("malformed seed %q: %w", part, err)
			}
			name = name[:i]
		}
		out = append(out, kv.Write{Key: "acct/" + name, Val: kv.EncodeInt(bal)})
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func parseInt(s string) (int64, error) {
	var v int64
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err
}
