// Command etxdbserver runs one database server (the XA engine with
// write-ahead logging) over TCP. Its stable storage lives in the -data
// journal file, so killing and restarting the process exercises real crash
// recovery: in-doubt branches are restored with their locks and a [Ready]
// notification announces the new incarnation to the application servers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/placement"
	"etx/internal/rchan"
	"etx/internal/stablestore"
	"etx/internal/transport/tcptransport"
	"etx/internal/xadb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("etxdbserver: ", err)
	}
}

func run() error {
	idx := flag.Int("id", 1, "database server index (1-based)")
	listen := flag.String("listen", ":7201", "listen address")
	appSpec := flag.String("appservers", "", "address book, e.g. 1=:7101,2=:7102,3=:7103")
	dataPath := flag.String("data", "etxdb.journal", "stable-storage journal file")
	fsync := flag.Duration("fsync", 0, "simulated forced-write latency on top of the real fsync (reproduces the bench commit bottleneck)")
	batchWindow := flag.Duration("batch-window", 0, "group-commit window: >0 lets one fsync cover a cohort of concurrent forced writes and serves Prepare/Decide rounds in batches; 0 keeps serialized per-write forces")
	maxBatch := flag.Int("max-batch", 0, "cap on group-commit cohorts and mailbox batches (0 = default 64)")
	queueExec := flag.Bool("queue-exec", false, "queue-oriented deterministic execution: plan mailbox drains into per-key run queues and execute without lock-manager acquisition (commitment gated on chain order instead)")
	adaptive := flag.Bool("adaptive", false, "self-tuning group commit: a lone cohort leader skips the accumulation window while pipelined forces still share fsyncs (match the app servers' -adaptive)")
	writeTimeout := flag.Duration("write-timeout", 0, "transport write deadline: a peer that stops reading trips it and the connection is dropped (0 = default 5s)")
	seedAcct := flag.String("seed", "alice=100,bob=100", "initial accounts (name=balance,...)")
	shards := flag.Int("shards", 0, "shard count of the deployment: seed only the accounts this server owns (server -id K owns shard K-1, so ids must run 1..shards); 0 seeds everything")
	placeSpec := flag.String("placement", "hash", "partitioner: hash | range:b1,b2,... (must match the app servers' -placement)")
	flag.Parse()

	apps, err := tcptransport.ParsePeers(id.RoleAppServer, *appSpec)
	if err != nil {
		return err
	}
	if len(apps) == 0 {
		return fmt.Errorf("need an -appservers address book")
	}

	// Recovery is real here: if the journal already has content, this start
	// is a recovery and the engine announces Ready.
	recovery := false
	if st, err := os.Stat(*dataPath); err == nil && st.Size() > 0 {
		recovery = true
	}
	store, err := stablestore.OpenFile(*dataPath, 0)
	if err != nil {
		return err
	}
	defer store.CloseFile()
	// The simulated fsync cost and the group-commit knobs are plain store
	// settings, so a TCP deployment can reproduce the bench bottleneck (and
	// its group-commit fix) on real sockets.
	if *adaptive && *batchWindow <= 0 {
		*batchWindow = 500 * time.Microsecond
	}
	serveBatch := 0
	if *batchWindow > 0 {
		serveBatch = *maxBatch
		if serveBatch <= 0 {
			serveBatch = 64
		}
	}
	store.SetForceLatency(*fsync)
	store.SetBatchWindow(*batchWindow)
	store.SetMaxBatch(serveBatch)
	// Adaptive keeps the full window for pipelined forces but lets a lone
	// group-commit leader skip the accumulation sleep entirely.
	store.SetAdaptive(*adaptive)

	engine, err := xadb.Open(store, xadb.Config{Self: id.DBServer(*idx), QueueExec: *queueExec})
	if err != nil {
		return err
	}
	if !recovery {
		seed, err := parseSeed(*seedAcct)
		if err != nil {
			return err
		}
		if *shards > 0 {
			// Per-shard seeding: this server holds only the keys whose home
			// shard it is. The shard of server -id N is N-1, matching the
			// app servers' placement over the sorted -dbservers book — the
			// partitioner must therefore be the same on both tiers.
			policy, err := placement.Parse(*placeSpec, *shards)
			if err != nil {
				return err
			}
			if *idx > *shards {
				log.Printf("warning: -id %d owns no shard of a %d-shard tier; seeding nothing", *idx, *shards)
			}
			own := seed[:0]
			for _, w := range seed {
				if policy.ShardFor(w.Key) == *idx-1 {
					own = append(own, w)
				}
			}
			seed = own
		}
		engine.Seed(seed)
	}

	self := id.DBServer(*idx)
	ep, err := tcptransport.Listen(tcptransport.Config{Self: self, Listen: *listen, Peers: apps, WriteTimeout: *writeTimeout})
	if err != nil {
		return err
	}
	defer ep.Close()

	srv, err := core.NewDataServer(core.DataServerConfig{
		Self:       self,
		AppServers: tcptransport.SortedPeers(apps),
		Engine:     engine,
		Endpoint:   rchan.Wrap(ep, 100*time.Millisecond),
		Recovery:   recovery,
		MaxBatch:   serveBatch,
		QueueExec:  *queueExec,
	})
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Stop()
	log.Printf("dbserver-%d listening on %s (incarnation %d, recovery=%v, %d in-doubt branches)",
		*idx, ep.Addr(), engine.Incarnation(), recovery, len(engine.InDoubt()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("dbserver-%d shutting down", *idx)
	return nil
}

func parseSeed(spec string) ([]kv.Write, error) {
	var out []kv.Write
	if spec == "" {
		return out, nil
	}
	for _, part := range splitComma(spec) {
		var name string
		var bal int64
		if n, err := fmt.Sscanf(part, "%s", &name); n != 1 || err != nil {
			return nil, fmt.Errorf("malformed seed %q", part)
		}
		if i := indexByte(name, '='); i > 0 {
			var err error
			bal, err = parseInt(name[i+1:])
			if err != nil {
				return nil, fmt.Errorf("malformed seed %q: %w", part, err)
			}
			name = name[:i]
		}
		out = append(out, kv.Write{Key: "acct/" + name, Val: kv.EncodeInt(bal)})
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func parseInt(s string) (int64, error) {
	var v int64
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err
}
