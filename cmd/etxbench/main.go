// Command etxbench regenerates the tables and figures of the paper's
// evaluation (Frølund & Guerraoui, "Implementing e-Transactions with
// Asynchronous Replication", DSN 2000) on the simulated substrate, plus the
// extension experiments indexed in DESIGN.md.
//
// Usage:
//
//	etxbench -exp all                # every experiment
//	etxbench -exp f8 -scale 0.05     # the Figure-8 latency table
//	etxbench -exp f7                 # Figure-7 communication steps
//	etxbench -exp f1                 # Figure-1 protocol executions
//	etxbench -exp failover           # response time under primary crashes
//	etxbench -exp scaling            # latency vs deployment size
//	etxbench -exp suspicion          # false-suspicion robustness (PB vs AR)
//	etxbench -exp woregister         # wo-register microbenchmark
//	etxbench -exp gc                 # register garbage-collection ablation
//	etxbench -exp pipeline           # pipelined-client throughput (1xK vs Kx1)
//	etxbench -exp shards             # throughput vs 1/2/4/8 key-sharded databases
//	etxbench -exp batch              # group commit: fsyncs/commit and throughput on vs off
//	etxbench -exp consensus          # cohort consensus: msgs and instances/commit on vs off
//	etxbench -exp memory             # batch-log memory: slot map + heap, GC on vs off
//	etxbench -exp queue              # queue-oriented deterministic execution vs strict 2PL
//	etxbench -exp wire               # vectored TCP transport + adaptive batching windows
//
// -scale multiplies the paper's calibrated component costs: 1.0 reproduces
// the paper's real-time latencies (a slow run), 0.05 keeps the ratios and
// finishes in seconds. -quick shrinks the extension experiments for CI
// smoke runs, -net lan|wan swaps the memnet substrate of the wire, queue
// and consensus sweeps for a latcost latency profile, -json writes every
// produced report as machine-readable
// JSON (keyed by experiment name) so perf trajectories can accumulate as
// build artifacts, and -memprofile writes a post-run heap profile for
// leak hunts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"etx/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etxbench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment: all|f8|f7|f1|failover|scaling|suspicion|woregister|patience|gc|pipeline|shards|batch|consensus|memory|queue|wire")
	scale := flag.Float64("scale", 0.05, "cost-model scale (1.0 = the paper's real-time costs)")
	requests := flag.Int("requests", 30, "requests per measured column")
	runs := flag.Int("runs", 5, "runs per failure scenario")
	inflight := flag.Int("inflight", 16, "pipelining depth K for -exp pipeline")
	quick := flag.Bool("quick", false, "CI smoke mode: smaller scale and request counts for the extension experiments")
	netProfile := flag.String("net", "", "latcost network profile for the wire/queue/consensus sweeps: lan|wan (default: each sweep's own substrate)")
	jsonPath := flag.String("json", "", "write the reports as JSON to this file (keyed by experiment name)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file after the experiments finish")
	flag.Parse()

	type experiment struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	experiments := []experiment{
		{"f8", func() (fmt.Stringer, error) {
			out, err := bench.RunFigure8(bench.Figure8Config{Scale: *scale, Requests: *requests})
			if err != nil {
				return nil, err
			}
			paper := bench.PaperFigure8()
			fmt.Println("--- paper's published Figure 8 ---")
			fmt.Print(paper.String())
			fmt.Println()
			return out, nil
		}},
		{"f7", func() (fmt.Stringer, error) { return bench.RunFigure7(*scale) }},
		{"f1", func() (fmt.Stringer, error) { return bench.RunFigure1(*scale) }},
		{"failover", func() (fmt.Stringer, error) {
			cfg := bench.FailoverConfig{Scale: *scale, Quick: *quick}
			// -runs defaults to a value tuned for the full run; in quick
			// mode honour it only when the user set it explicitly.
			if !*quick {
				cfg.Runs = *runs
			}
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "runs" {
					cfg.Runs = *runs
				}
			})
			return bench.RunFailover(cfg)
		}},
		{"scaling", func() (fmt.Stringer, error) { return bench.RunScaling(*scale, *requests) }},
		{"suspicion", func() (fmt.Stringer, error) { return bench.RunSuspicion(*scale, *runs) }},
		{"woregister", func() (fmt.Stringer, error) { return bench.RunWORegister(*scale, 3, *requests) }},
		{"patience", func() (fmt.Stringer, error) { return bench.RunPatience(*scale, *runs) }},
		{"gc", func() (fmt.Stringer, error) { return bench.RunGCAblation(5 * *runs * *runs) }},
		{"pipeline", func() (fmt.Stringer, error) { return bench.RunPipeline(*scale, *requests, *inflight) }},
		{"shards", func() (fmt.Stringer, error) {
			cfg := bench.ShardsConfig{Quick: *quick}
			if !*quick {
				cfg.Scale = *scale
			}
			// -scale/-requests/-inflight default to values tuned for the
			// other experiments; in quick mode honour them only when the
			// user set them explicitly.
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "scale":
					cfg.Scale = *scale
				case "requests":
					cfg.Requests = *requests
				case "inflight":
					cfg.InFlight = *inflight
				}
			})
			return bench.RunShards(cfg)
		}},
		{"batch", func() (fmt.Stringer, error) {
			cfg := bench.BatchConfig{Quick: *quick}
			if !*quick {
				cfg.Scale = *scale
			}
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "scale":
					cfg.Scale = *scale
				case "requests":
					cfg.Requests = *requests
				case "inflight":
					cfg.InFlights = []int{1}
					if *inflight != 1 {
						cfg.InFlights = append(cfg.InFlights, *inflight)
					}
				}
			})
			return bench.RunBatch(cfg)
		}},
		{"memory", func() (fmt.Stringer, error) {
			// The memory sweep is CPU-bound like the consensus one; -scale
			// does not apply. -requests overrides the commit volume.
			cfg := bench.MemoryConfig{Quick: *quick}
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "requests":
					cfg.Commits = *requests
				case "inflight":
					cfg.InFlight = *inflight
				}
			})
			return bench.RunMemory(cfg)
		}},
		{"queue", func() (fmt.Stringer, error) {
			// The queue sweep runs on its own fixed LAN-like substrate, so
			// -scale does not apply to it.
			cfg := bench.QueueConfig{Quick: *quick, Net: *netProfile}
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "requests":
					cfg.Requests = *requests
				case "inflight":
					cfg.InFlights = []int{1}
					if *inflight != 1 {
						cfg.InFlights = append(cfg.InFlights, *inflight)
					}
				}
			})
			return bench.RunQueue(cfg)
		}},
		{"consensus", func() (fmt.Stringer, error) {
			// The consensus sweep is CPU-bound by design (zero-cost network
			// and log device), so -scale does not apply to it.
			cfg := bench.ConsensusConfig{Quick: *quick, Net: *netProfile}
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "requests":
					cfg.Requests = *requests
				case "inflight":
					cfg.InFlights = []int{1}
					if *inflight != 1 {
						cfg.InFlights = append(cfg.InFlights, *inflight)
					}
				}
			})
			return bench.RunConsensus(cfg)
		}},
		{"wire", func() (fmt.Stringer, error) {
			// The wire sweep runs on real TCP loopback (transport section)
			// and its own memnet substrate (windows section); -scale does
			// not apply to it.
			cfg := bench.WireConfig{Quick: *quick, Net: *netProfile}
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "requests":
					cfg.Requests = *requests
				case "inflight":
					cfg.InFlights = []int{1}
					if *inflight != 1 {
						cfg.InFlights = append(cfg.InFlights, *inflight)
					}
				}
			})
			return bench.RunWire(cfg)
		}},
	}

	matched := false
	reports := make(map[string]fmt.Stringer)
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		matched = true
		fmt.Printf("=== experiment %s ===\n", e.name)
		out, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(out.String())
		reports[e.name] = out
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return fmt.Errorf("encode reports: %w", err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *jsonPath, err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("create %s: %w", *memProfile, err)
		}
		defer f.Close()
		runtime.GC() // profile live objects, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("write heap profile: %w", err)
		}
		fmt.Printf("wrote %s\n", *memProfile)
	}
	return nil
}
