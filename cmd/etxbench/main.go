// Command etxbench regenerates the tables and figures of the paper's
// evaluation (Frølund & Guerraoui, "Implementing e-Transactions with
// Asynchronous Replication", DSN 2000) on the simulated substrate, plus the
// extension experiments indexed in DESIGN.md.
//
// Usage:
//
//	etxbench -exp all                # every experiment
//	etxbench -exp f8 -scale 0.05     # the Figure-8 latency table
//	etxbench -exp f7                 # Figure-7 communication steps
//	etxbench -exp f1                 # Figure-1 protocol executions
//	etxbench -exp failover           # response time under primary crashes
//	etxbench -exp scaling            # latency vs deployment size
//	etxbench -exp suspicion          # false-suspicion robustness (PB vs AR)
//	etxbench -exp woregister         # wo-register microbenchmark
//	etxbench -exp gc                 # register garbage-collection ablation
//	etxbench -exp pipeline           # pipelined-client throughput (1xK vs Kx1)
//
// -scale multiplies the paper's calibrated component costs: 1.0 reproduces
// the paper's real-time latencies (a slow run), 0.05 keeps the ratios and
// finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"etx/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etxbench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment: all|f8|f7|f1|failover|scaling|suspicion|woregister|patience|gc|pipeline")
	scale := flag.Float64("scale", 0.05, "cost-model scale (1.0 = the paper's real-time costs)")
	requests := flag.Int("requests", 30, "requests per measured column")
	runs := flag.Int("runs", 5, "runs per failure scenario")
	inflight := flag.Int("inflight", 16, "pipelining depth K for -exp pipeline")
	flag.Parse()

	type experiment struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	experiments := []experiment{
		{"f8", func() (fmt.Stringer, error) {
			out, err := bench.RunFigure8(bench.Figure8Config{Scale: *scale, Requests: *requests})
			if err != nil {
				return nil, err
			}
			paper := bench.PaperFigure8()
			fmt.Println("--- paper's published Figure 8 ---")
			fmt.Print(paper.String())
			fmt.Println()
			return out, nil
		}},
		{"f7", func() (fmt.Stringer, error) { return bench.RunFigure7(*scale) }},
		{"f1", func() (fmt.Stringer, error) { return bench.RunFigure1(*scale) }},
		{"failover", func() (fmt.Stringer, error) {
			return bench.RunFailover(bench.FailoverConfig{Scale: *scale, Runs: *runs})
		}},
		{"scaling", func() (fmt.Stringer, error) { return bench.RunScaling(*scale, *requests) }},
		{"suspicion", func() (fmt.Stringer, error) { return bench.RunSuspicion(*scale, *runs) }},
		{"woregister", func() (fmt.Stringer, error) { return bench.RunWORegister(*scale, 3, *requests) }},
		{"patience", func() (fmt.Stringer, error) { return bench.RunPatience(*scale, *runs) }},
		{"gc", func() (fmt.Stringer, error) { return bench.RunGCAblation(5 * *runs * *runs) }},
		{"pipeline", func() (fmt.Stringer, error) { return bench.RunPipeline(*scale, *requests, *inflight) }},
	}

	matched := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		matched = true
		fmt.Printf("=== experiment %s ===\n", e.name)
		out, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(out.String())
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
