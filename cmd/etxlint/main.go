// Command etxlint runs the repo's custom static-analysis suite over a set of
// package patterns and exits nonzero if any diagnostic survives the
// suppression annotations. It is the mechanical enforcement arm of the
// protocol's concurrency and wire invariants:
//
//	go run ./cmd/etxlint ./...
//	go run ./cmd/etxlint -list
//	go run ./cmd/etxlint -run lockheld,wallclock ./internal/consensus
//	go run ./cmd/etxlint -json ./...
//	go run ./cmd/etxlint -audit-suppressions ./...
//
// -json emits one JSON object per diagnostic line (analyzer, file, line,
// col, message, suppressed) — suppressed findings included — and exits 1
// only if an unsuppressed finding exists; CI parses this stream to publish
// annotations. -audit-suppressions lists every //etxlint:allow annotation
// with its file:line and justification and exits 1 if any justification is
// empty, keeping suppression debt visible.
//
// The driver loads packages with `go list -deps -json` and type-checks them
// from source (see internal/lint/load.go), so it needs the go toolchain on
// PATH but no third-party modules and no pre-built export data. It cannot be
// used as a `go vet -vettool` (that protocol needs x/tools' unitchecker);
// run it standalone, as CI's lint job does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"etx/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list available analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic (suppressed included); exit 1 only on unsuppressed findings")
	audit := flag.Bool("audit-suppressions", false, "list every //etxlint:allow annotation with its justification; exit 1 if any justification is empty")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: etxlint [-list] [-run a,b] [-json] [-audit-suppressions] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := lint.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *run != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "etxlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "etxlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etxlint: %v\n", err)
		os.Exit(2)
	}

	if *audit {
		os.Exit(auditSuppressions(pkgs))
	}

	enc := json.NewEncoder(os.Stdout)
	found := 0
	for _, pkg := range pkgs {
		if *jsonOut {
			diags, err := lint.RunAnalyzersAll(pkg, analyzers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "etxlint: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				if err := enc.Encode(d.ToJSON(pkg.Fset)); err != nil {
					fmt.Fprintf(os.Stderr, "etxlint: %v\n", err)
					os.Exit(2)
				}
				if !d.Suppressed {
					found++
				}
			}
			continue
		}
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "etxlint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "etxlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// auditSuppressions prints every //etxlint:allow annotation across pkgs and
// returns the process exit code: 1 if any justification is empty.
func auditSuppressions(pkgs []*lint.Package) int {
	empty := 0
	total := 0
	for _, pkg := range pkgs {
		for _, s := range lint.Suppressions(pkg) {
			total++
			just := s.Justification
			if just == "" {
				just = "<MISSING JUSTIFICATION>"
				empty++
			}
			fmt.Printf("%s:%d: allow %s — %s\n", s.File, s.Line, strings.Join(s.Analyzers, ","), just)
		}
	}
	fmt.Fprintf(os.Stderr, "etxlint: %d suppression(s), %d missing justification\n", total, empty)
	if empty > 0 {
		return 1
	}
	return 0
}
