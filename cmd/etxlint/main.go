// Command etxlint runs the repo's custom static-analysis suite over a set of
// package patterns and exits nonzero if any diagnostic survives the
// suppression annotations. It is the mechanical enforcement arm of the
// protocol's concurrency and wire invariants:
//
//	go run ./cmd/etxlint ./...
//	go run ./cmd/etxlint -list
//	go run ./cmd/etxlint -run lockheld,wallclock ./internal/consensus
//
// The driver loads packages with `go list -deps -json` and type-checks them
// from source (see internal/lint/load.go), so it needs the go toolchain on
// PATH but no third-party modules and no pre-built export data. It cannot be
// used as a `go vet -vettool` (that protocol needs x/tools' unitchecker);
// run it standalone, as CI's lint job does.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"etx/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list available analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: etxlint [-list] [-run a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := lint.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *run != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "etxlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "etxlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etxlint: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "etxlint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "etxlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
