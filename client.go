package etx

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/rchan"
	"etx/internal/transport"
	"etx/internal/transport/tcptransport"
)

// Client is a first-class, transport-agnostic handle on one client process of
// the deployment. The same type fronts both deployment styles: obtain one
// with Cluster.Client for the in-process simulation, or with Dial for a
// multi-process TCP deployment.
//
// A Client is safe for concurrent use: any number of goroutines may pipeline
// requests through it simultaneously via Issue, IssueAsync, or IssueBatch.
// Each request runs its own instance of the paper's retry/backoff/rebroadcast
// state machine, keyed by its sequence number, and commits exactly once.
type Client struct {
	inner  *core.Client
	ep     transport.Endpoint // owned transport (Dial); nil for cluster handles
	tcp    *tcptransport.Endpoint
	owned  bool
	shards int

	closeOnce sync.Once
	closeErr  error
}

// Shards returns the deployment's shard count as configured at Dial time
// (DialConfig.Shards), or 0 for in-process cluster handles and unsharded
// deployments.
func (c *Client) Shards() int { return c.shards }

// Issue submits a request and blocks until the committed result is delivered
// — the paper's issue() primitive. Internally the request may go through
// several aborted tries; exactly one ever commits. Cancelling ctx models a
// client crash: the request then executes at most once and all database
// resources are eventually released.
func (c *Client) Issue(ctx context.Context, request []byte) ([]byte, error) {
	return c.inner.Issue(ctx, request)
}

// IssueAsync submits a request without waiting and returns a Future that
// resolves when the committed result arrives, ctx is cancelled, or the client
// is closed. Cancelling ctx releases the request's in-flight slot.
func (c *Client) IssueAsync(ctx context.Context, request []byte) (*Future, error) {
	f, err := c.inner.IssueAsync(ctx, request)
	if err != nil {
		return nil, err
	}
	return &Future{inner: f}, nil
}

// IssueBatch pipelines all requests concurrently and blocks until every one
// has resolved. Results are positional; the first error encountered is
// returned and failed positions hold nil.
func (c *Client) IssueBatch(ctx context.Context, requests [][]byte) ([][]byte, error) {
	return c.inner.IssueBatch(ctx, requests)
}

// InFlight returns the number of currently outstanding requests.
func (c *Client) InFlight() int { return c.inner.InFlight() }

// Addr returns the client's bound listen address for dialed clients (useful
// with ":0": pass it to the servers' -clients address book). It returns ""
// for in-process cluster handles.
func (c *Client) Addr() string {
	if c.tcp == nil {
		return ""
	}
	return c.tcp.Addr()
}

// Close releases the handle. For dialed clients it stops the client process
// and closes its transport; in-flight requests fail. For handles obtained
// from Cluster.Client it is a no-op — the cluster owns the client's
// lifecycle.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		if !c.owned {
			return
		}
		c.inner.Stop()
		if c.ep != nil {
			c.closeErr = c.ep.Close()
		}
	})
	return c.closeErr
}

// Future is the handle of one asynchronous Issue. It resolves exactly once.
type Future struct {
	inner *core.Future
}

// Done is closed when the future has resolved.
func (f *Future) Done() <-chan struct{} { return f.inner.Done() }

// Result blocks until the future resolves and returns the committed result.
func (f *Future) Result() ([]byte, error) { return f.inner.Result() }

// Wait is Result with a context escape hatch: it returns ctx.Err() if ctx is
// done first. The underlying request keeps running under the context it was
// issued with.
func (f *Future) Wait(ctx context.Context) ([]byte, error) { return f.inner.Wait(ctx) }

// DialConfig describes how to connect a client to a running TCP deployment
// (the cmd/etxappserver + cmd/etxdbserver binaries).
type DialConfig struct {
	// ID is this client's 1-based index (default 1). It must match the
	// entry for this client in the servers' -clients address book. The
	// deployment's exactly-once state is keyed by (ID, sequence number);
	// Dial derives each process's sequence base from crypto/rand, so
	// restarting a client under the same ID is safe for new work as long
	// as incarnations don't run concurrently.
	ID int
	// Listen is the local address results arrive on (default ":0"; read the
	// chosen port back with Client.Addr).
	Listen string
	// AppServers is the middle tier's address book,
	// e.g. "1=host:port,2=host:port,3=host:port". Required; entry 1 is the
	// default primary.
	AppServers string
	// Backoff is how long to wait for the primary before broadcasting a
	// request to all application servers (default 150ms); Rebroadcast is
	// the re-broadcast interval after that (default Backoff).
	Backoff     time.Duration
	Rebroadcast time.Duration
	// Retransmit is the reliable-channel resend period layered over TCP
	// (default 100ms).
	Retransmit time.Duration
	// MaxInFlight caps concurrently outstanding requests; Issue and
	// IssueAsync block for a slot when it is reached. 0 means unlimited.
	MaxInFlight int
	// Shards records the deployment's shard count (the servers' -shards
	// value). Routing happens at the application servers, so the client
	// needs no placement state; the value is exposed through Client.Shards
	// so workload generators can partition their keys (with etx.ShardOf)
	// the same way the servers do. 0 means unknown/unsharded.
	Shards int
}

// Dial connects a Client to a TCP deployment. The returned handle speaks the
// same concurrent, pipelined API as in-process cluster handles; Close it when
// done.
func Dial(cfg DialConfig) (*Client, error) {
	if cfg.ID <= 0 {
		cfg.ID = 1
	}
	if cfg.Listen == "" {
		cfg.Listen = ":0"
	}
	if cfg.Retransmit <= 0 {
		cfg.Retransmit = 100 * time.Millisecond
	}
	apps, err := tcptransport.ParsePeers(id.RoleAppServer, cfg.AppServers)
	if err != nil {
		return nil, fmt.Errorf("etx: dial: %w", err)
	}
	if len(apps) == 0 {
		return nil, errors.New("etx: dial: AppServers address book is required")
	}
	self := id.Client(cfg.ID)
	tep, err := tcptransport.Listen(tcptransport.Config{Self: self, Listen: cfg.Listen, Peers: apps})
	if err != nil {
		return nil, fmt.Errorf("etx: dial: %w", err)
	}
	rep := rchan.Wrap(tep, cfg.Retransmit)
	base, err := randomSeqBase()
	if err != nil {
		rep.Close()
		return nil, fmt.Errorf("etx: dial: %w", err)
	}
	inner, err := core.NewClient(core.ClientConfig{
		Self:        self,
		AppServers:  tcptransport.SortedPeers(apps),
		Endpoint:    rep,
		Backoff:     cfg.Backoff,
		Rebroadcast: cfg.Rebroadcast,
		MaxInFlight: cfg.MaxInFlight,
		// A fresh sequence space per incarnation: reusing an ID across
		// restarts must not replay the old incarnation's cached results.
		SeqBase: base,
		// Dialed clients run unbounded workloads; the delivery log exists
		// for the in-process oracle and would grow forever here.
		DiscardDeliveries: true,
	})
	if err != nil {
		rep.Close()
		return nil, fmt.Errorf("etx: dial: %w", err)
	}
	return &Client{inner: inner, ep: rep, tcp: tep, owned: true, shards: cfg.Shards}, nil
}

// randomSeqBase derives a fresh incarnation's sequence base from crypto/rand.
// The deployment's exactly-once state (register keys, commit caches) is keyed
// by (client ID, sequence number), so two incarnations of the same ID must
// never share sequence numbers: the second would be handed the first's cached
// results instead of executing. A wall-clock base cannot guarantee that — a
// clock stepped backwards, or two dials within the clock's resolution, reuses
// a live incarnation's numbers and replays its results. 62 random bits make a
// collision across realistic restart counts negligible while leaving 2^62
// sequence numbers of headroom before the counter could wrap.
func randomSeqBase() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("derive sequence base: %w", err)
	}
	return binary.BigEndian.Uint64(b[:]) >> 2, nil
}
