// Package etx is a from-scratch Go implementation of the e-Transaction
// (exactly-once transaction) abstraction of Frølund & Guerraoui,
// "Implementing e-Transactions with Asynchronous Replication" (DSN 2000).
//
// An e-Transaction executes exactly once despite crashes of application
// servers, crashes and recoveries of database servers, client retries and
// unreliable failure detection. The package assembles the full three-tier
// architecture: replicated stateless application servers running the paper's
// protocol over write-once registers (consensus), XA-style transactional
// database engines with write-ahead logging and recovery, and clients that
// retry behind the scenes until a committed result arrives.
//
// The unit of interaction is the Client handle, which is concurrent and
// pipelined: any number of goroutines may have requests outstanding on one
// handle at the same time (Issue blocks, IssueAsync returns a Future,
// IssueBatch pipelines a slice), and every request commits exactly once. The
// same handle fronts both deployment styles:
//
//   - In-process simulation: New assembles the whole three-tier deployment in
//     one process and Cluster.Client hands out handles. Fault injection
//     (CrashAppServer, CrashDBServer, RecoverDBServer) and the CheckInvariants
//     oracle make this the right surface for tests and experiments.
//   - Multi-process TCP: Dial connects a handle to the cmd/etxappserver and
//     cmd/etxdbserver binaries over real sockets.
//
// Quick start (in-process):
//
//	c, err := etx.New(etx.Config{
//		Seed: map[string]int64{"acct/alice": 100},
//		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
//			balance, err := tx.Add(ctx, 0, "acct/alice", -10)
//			if err != nil {
//				return nil, err
//			}
//			return []byte(fmt.Sprintf("balance %d", balance)), nil
//		},
//	})
//	...
//	cl := c.Client(1)
//	result, err := cl.Issue(ctx, []byte("withdraw"))
//
// Over TCP:
//
//	cl, err := etx.Dial(etx.DialConfig{AppServers: "1=:7101,2=:7102,3=:7103"})
//	...
//	result, err := cl.Issue(ctx, []byte("alice:-10"))
//
// Either way the result is delivered exactly once: if an application server
// crashes mid-request the remaining replicas either finish its commitment or
// abort the attempt and re-execute, without ever double-charging and without
// the client's involvement.
package etx

import (
	"context"
	"errors"
	"fmt"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/placement"
	"etx/internal/transport"
)

// Logic is the application's business logic — the paper's compute()
// function. It runs on an application server, manipulates the database tier
// through tx, and returns the result delivered to the client. It may run
// several times for one request (once per internal try), so all its effects
// must go through tx; a returned error aborts the current try and the
// request is retried.
type Logic func(ctx context.Context, tx *Tx, request []byte) ([]byte, error)

// Config describes a deployment. The zero value of every field has a
// sensible default.
type Config struct {
	// AppServers is the number of replicated application servers
	// (default 3; a majority must stay up).
	AppServers int
	// DataServers is the number of database servers (default 1).
	DataServers int
	// Shards splits the database tier into key-homed shards instead of
	// independent databases: it sets the tier size (leave DataServers 0 or
	// equal), routes the keyed Tx methods (GetKey, PutKey, AddKey, ...) by
	// hash placement, seeds each database with only the keys it owns, and
	// commits each request against only the shards it touched — a
	// single-shard transaction costs the same on 1 database as on 64.
	Shards int
	// Clients is the number of client processes (default 1).
	Clients int
	// Logic is the business logic. Required.
	Logic Logic
	// Seed is the databases' initial integer table (every database gets the
	// same image).
	Seed map[string]int64
	// NetworkLatency is the one-way message latency; NetworkJitter adds a
	// uniform random component.
	NetworkLatency time.Duration
	NetworkJitter  time.Duration
	// LossProbability and DupProbability inject message loss/duplication;
	// setting either enables the reliable-channel layer automatically.
	LossProbability float64
	DupProbability  float64
	// FsyncLatency is the simulated cost of a forced database log write.
	FsyncLatency time.Duration
	// BatchWindow enables group commit and message batching across the
	// commit path: database stable stores combine concurrent forced log
	// writes into shared fsyncs, database servers serve Prepare/Decide
	// rounds in batches, and application servers aggregate commit fan-out to
	// the same shard into batch envelopes. The window is the extra time a
	// group-commit leader waits for followers (under load batching emerges
	// regardless); 0 — the default — keeps the paper's one-fsync-per-forced-
	// write behaviour.
	BatchWindow time.Duration
	// MaxBatch caps group-commit cohorts and batch envelopes (default 64;
	// only meaningful with BatchWindow set).
	MaxBatch int
	// CohortWindow enables cohort consensus on the application servers:
	// concurrent wo-register writes (the per-request regA claim and regD
	// decision) share batch-consensus slots — one Chandra–Toueg instance per
	// cohort — instead of running one instance per write, cutting consensus
	// messages and instances per commit by the cohort size while preserving
	// register semantics exactly (decided slots apply in agreed order, so
	// every write race has the same winner on every replica). The window is
	// the extra time a fresh cohort stays open for followers; 0 — the
	// default — keeps the paper's one-instance-per-write behaviour.
	CohortWindow time.Duration
	// MaxCohort caps register ops per consensus slot (default 64; only
	// meaningful with CohortWindow set).
	MaxCohort int
	// AdaptiveWindows makes the batching machinery self-tuning: each
	// application server samples its in-flight request depth and collapses
	// the outbound-batch and consensus-cohort caps to one when a single
	// request is in flight (batching would only add latency) while widening
	// them toward MaxBatch/MaxCohort under pipelining, and the databases'
	// group commit runs a minimal accumulation window. With it set, no
	// static BatchWindow/CohortWindow choice has to trade depth-1 latency
	// for depth-64 throughput; unset windows default to small values
	// (500µs/100µs). Adaptation tunes timing only — protocol semantics are
	// exactly those of the configured windows.
	AdaptiveWindows bool
	// RetainSlots bounds the memory of cohort consensus: each application
	// server advertises the batch-log slots it has applied, and decided
	// slots below the cluster-wide minimum minus this retention tail are
	// truncated (a replica that falls further behind catches up through
	// checkpoint state transfer instead of slot replay). 0 — the default —
	// keeps every decided slot forever, which on a long-running deployment
	// grows without bound; only meaningful with CohortWindow set.
	RetainSlots int
	// SuspicionTimeout tunes the failure detector among application servers
	// (default 60ms): smaller means faster failover, more false suspicions
	// (which are safe but cost retries).
	SuspicionTimeout time.Duration
	// ClientBackoff is how long a client waits for the primary before
	// broadcasting its request to all application servers (default 150ms).
	ClientBackoff time.Duration
	// MaxInFlight caps the number of concurrently outstanding requests per
	// client; Issue and IssueAsync block for a slot when it is reached.
	// 0 means unlimited.
	MaxInFlight int
	// Workers is the number of compute threads per application server
	// (default 1, the paper's model). Raise it so pipelined clients get
	// genuine middle-tier concurrency.
	Workers int
	// ReplicaFactor gives every shard a replica group: the primary executes,
	// votes and decides exactly as before while streaming its decided effects
	// asynchronously to ReplicaFactor-1 backups, and when the primary is
	// suspected the lowest-ranked live backup replays its log tail, re-seeds
	// in-doubt branches through the ordinary recovery path and takes the
	// shard over. Application servers re-route through an epoch-stamped view,
	// so a deposed primary's votes and acks are rejected by epoch. 1 — the
	// default — is the paper-exact unreplicated tier: none of the replication
	// machinery is instantiated.
	ReplicaFactor int
	// QueueExec switches the database tier to queue-oriented deterministic
	// batch execution: each data server plans its mailbox drains into
	// per-key FIFO run queues and executes them without any lock-manager
	// acquisition (per-key serial, disjoint keys parallel), with commitment
	// gated on chain predecessors instead of locks. Hot-key workloads at
	// depth gain throughput because the serial section per conflicting
	// transaction shrinks to the commit decision itself. Off — the default —
	// keeps the paper-exact strict two-phase locking.
	QueueExec bool
}

// Cluster is a running three-tier deployment.
type Cluster struct {
	inner *cluster.Cluster
	cfg   Config
}

// Errors returned by Tx operations and the invariant checker.
var (
	// ErrCheckFailed reports a violated CheckAtLeast guard; the databases
	// will refuse to commit the try (a user-level abort in the paper's
	// model).
	ErrCheckFailed = errors.New("etx: check failed")
	// ErrOpFailed reports a data operation the database rejected (lock
	// timeout, finished branch, ...). The try aborts and is retried.
	ErrOpFailed = errors.New("etx: operation failed")
)

// New builds and starts a deployment.
func New(cfg Config) (*Cluster, error) {
	if cfg.Logic == nil {
		return nil, errors.New("etx: Config.Logic is required")
	}
	seed := make([]kv.Write, 0, len(cfg.Seed))
	for k, v := range cfg.Seed {
		seed = append(seed, kv.Write{Key: k, Val: kv.EncodeInt(v)})
	}
	logic := cfg.Logic
	inner, err := cluster.New(cluster.Config{
		AppServers:  cfg.AppServers,
		DataServers: cfg.DataServers,
		Shards:      cfg.Shards,
		Clients:     cfg.Clients,
		Net: transport.Options{
			DefaultLatency: cfg.NetworkLatency,
			Jitter:         cfg.NetworkJitter,
			LossProb:       cfg.LossProbability,
			DupProb:        cfg.DupProbability,
		},
		Reliable:          cfg.LossProbability > 0 || cfg.DupProbability > 0,
		ForceLatency:      cfg.FsyncLatency,
		BatchWindow:       cfg.BatchWindow,
		MaxBatch:          cfg.MaxBatch,
		CohortWindow:      cfg.CohortWindow,
		MaxCohort:         cfg.MaxCohort,
		AdaptiveWindows:   cfg.AdaptiveWindows,
		RetainSlots:       cfg.RetainSlots,
		Seed:              seed,
		SuspectTimeout:    cfg.SuspicionTimeout,
		ClientBackoff:     cfg.ClientBackoff,
		ClientRebroadcast: cfg.ClientBackoff,
		ClientMaxInFlight: cfg.MaxInFlight,
		Workers:           cfg.Workers,
		QueueExec:         cfg.QueueExec,
		ReplicaFactor:     cfg.ReplicaFactor,
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return logic(ctx, &Tx{inner: tx}, req)
		}),
	})
	if err != nil {
		return nil, fmt.Errorf("etx: %w", err)
	}
	return &Cluster{inner: inner, cfg: cfg}, nil
}

// Close tears the deployment down.
func (c *Cluster) Close() { c.inner.Stop() }

// Client returns a handle on the i-th client process (1-based), or nil if
// unknown. The handle supports concurrent, pipelined requests; see Client.
// The cluster owns the underlying process, so Close on the handle is a
// no-op.
func (c *Cluster) Client(i int) *Client {
	cl := c.inner.Client(i)
	if cl == nil {
		return nil
	}
	return &Client{inner: cl}
}

// Issue submits a request on behalf of client (1-based) and blocks until the
// committed result is delivered — the paper's issue() primitive. Internally
// the request may go through several aborted tries; exactly one ever
// commits. Cancelling ctx models a client crash: the request then executes
// at most once and all database resources are eventually released.
//
// Issue is shorthand for Cluster.Client(client).Issue; the handle form also
// offers IssueAsync and IssueBatch.
func (c *Cluster) Issue(ctx context.Context, client int, request []byte) ([]byte, error) {
	cl := c.Client(client)
	if cl == nil {
		return nil, fmt.Errorf("etx: unknown client %d", client)
	}
	return cl.Issue(ctx, request)
}

// CrashAppServer crashes an application server (1-based). Application
// servers are stateless and do not recover in the model; the protocol
// tolerates any minority being down.
func (c *Cluster) CrashAppServer(i int) { c.inner.CrashApp(i) }

// CrashDBServer crashes a database server, preserving its stable storage.
func (c *Cluster) CrashDBServer(i int) { c.inner.CrashDB(i) }

// RecoverDBServer restarts a crashed database server: it replays its
// write-ahead log, restores in-doubt transaction branches, and announces
// recovery to the middle tier. On a replicated tier (ReplicaFactor > 1) a
// recovered server that lost its shard to a promoted backup rejoins the
// replica group as a backup of the new primary instead.
func (c *Cluster) RecoverDBServer(i int) error { return c.inner.RecoverDB(i) }

// ReplicationStats reports the replicated data tier's failover counters:
// how many promotions have happened, the mailbox-drain-to-takeover latency
// of each, and how many messages from deposed primaries the application
// servers rejected by epoch. All zero on ReplicaFactor=1 deployments.
func (c *Cluster) ReplicationStats() (promotions int, latencies []time.Duration, staleRejects uint64) {
	promotions, latencies = c.inner.Promotions()
	return promotions, latencies, c.inner.StaleRejects()
}

// ReadInt reads an integer key directly from a database's committed state
// (0 when the key is absent). Intended for inspection, not transactions.
func (c *Cluster) ReadInt(db int, key string) (int64, error) {
	e := c.inner.Engine(db)
	if e == nil {
		return 0, fmt.Errorf("etx: database %d is down or unknown", db)
	}
	return e.Store().GetInt(key)
}

// Read reads a raw key directly from a database's committed state.
func (c *Cluster) Read(db int, key string) ([]byte, bool) {
	e := c.inner.Engine(db)
	if e == nil {
		return nil, false
	}
	return e.Store().Get(key)
}

// CheckInvariants verifies the paper's agreement and validity properties
// over the deployment's current state (nil when everything holds). It is the
// library's built-in correctness oracle.
func (c *Cluster) CheckInvariants() error {
	if rep := c.inner.CheckProperties(); !rep.Ok() {
		return fmt.Errorf("etx: %s", rep)
	}
	return nil
}

// HomeDB returns the 1-based database server owning key's home shard —
// where ReadInt/Read find keys written through the keyed Tx methods.
func (c *Cluster) HomeDB(key string) int {
	return c.inner.Placement().Home(key).Index
}

// ShardOf returns the home shard of key under the hash placement a
// deployment of the given shard count uses. It lets clients partition their
// own workloads (e.g. one key per shard) without talking to a server.
func ShardOf(key string, shards int) int {
	return placement.Hash(shards).ShardFor(key)
}

// Tx is the transaction handle Logic manipulates the database tier through.
//
// Two addressing styles coexist. The keyed methods (GetKey, PutKey, AddKey,
// CheckKeyAtLeast) route each operation to the key's home shard through the
// deployment's placement and are the surface sharded deployments should use:
// a transaction that stays on one shard commits through the one-shard fast
// path no matter how many databases exist. The index methods (Get, Put, Add,
// CheckAtLeast) address a database by its 0-based position for logics that
// manage placement themselves. Either way, commitment involves exactly the
// databases the transaction touched.
type Tx struct {
	inner *core.Tx
}

// NumDBs returns the number of database servers.
func (t *Tx) NumDBs() int { return len(t.inner.DBs()) }

// HomeDB returns the 0-based database index owning key's home shard.
func (t *Tx) HomeDB(key string) int {
	home := t.inner.Home(key)
	for i, db := range t.inner.DBs() {
		if db == home {
			return i
		}
	}
	return 0
}

// GetKey reads key on its home shard, returning the raw value and its
// integer interpretation.
func (t *Tx) GetKey(ctx context.Context, key string) ([]byte, int64, error) {
	rep, err := t.inner.Do(ctx, key, msg.Op{Code: msg.OpGet})
	if err != nil {
		return nil, 0, err
	}
	if !rep.OK {
		return nil, 0, fmt.Errorf("%w: get %q: %s", ErrOpFailed, key, rep.Err)
	}
	return rep.Val, rep.Num, nil
}

// PutKey writes val to key on its home shard.
func (t *Tx) PutKey(ctx context.Context, key string, val []byte) error {
	rep, err := t.inner.Do(ctx, key, msg.Op{Code: msg.OpPut, Val: val})
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("%w: put %q: %s", ErrOpFailed, key, rep.Err)
	}
	return nil
}

// AddKey atomically adds delta to the integer at key on its home shard and
// returns the new value.
func (t *Tx) AddKey(ctx context.Context, key string, delta int64) (int64, error) {
	rep, err := t.inner.Do(ctx, key, msg.Op{Code: msg.OpAdd, Delta: delta})
	if err != nil {
		return 0, err
	}
	if !rep.OK {
		return 0, fmt.Errorf("%w: add %q: %s", ErrOpFailed, key, rep.Err)
	}
	return rep.Num, nil
}

// CheckKeyAtLeast installs a commitment-time guard on key's home shard: if
// the integer at key is below min, that shard refuses to commit the try and
// ErrCheckFailed is returned (see CheckAtLeast for the semantics).
func (t *Tx) CheckKeyAtLeast(ctx context.Context, key string, min int64) error {
	rep, err := t.inner.Do(ctx, key, msg.Op{Code: msg.OpCheckGE, Delta: min})
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("%w: %s", ErrCheckFailed, rep.Err)
	}
	return nil
}

func (t *Tx) db(i int) (id.NodeID, error) {
	dbs := t.inner.DBs()
	if i < 0 || i >= len(dbs) {
		return id.NodeID{}, fmt.Errorf("etx: database index %d out of range [0,%d)", i, len(dbs))
	}
	return dbs[i], nil
}

func (t *Tx) exec(ctx context.Context, dbIdx int, op msg.Op) (msg.OpResult, error) {
	db, err := t.db(dbIdx)
	if err != nil {
		return msg.OpResult{}, err
	}
	rep, err := t.inner.Exec(ctx, db, op)
	if err != nil {
		return msg.OpResult{}, err
	}
	return rep, nil
}

// Get reads key on database db, returning the raw value and its integer
// interpretation.
func (t *Tx) Get(ctx context.Context, db int, key string) ([]byte, int64, error) {
	rep, err := t.exec(ctx, db, msg.Op{Code: msg.OpGet, Key: key})
	if err != nil {
		return nil, 0, err
	}
	if !rep.OK {
		return nil, 0, fmt.Errorf("%w: get %q: %s", ErrOpFailed, key, rep.Err)
	}
	return rep.Val, rep.Num, nil
}

// Put writes val to key on database db.
func (t *Tx) Put(ctx context.Context, db int, key string, val []byte) error {
	rep, err := t.exec(ctx, db, msg.Op{Code: msg.OpPut, Key: key, Val: val})
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("%w: put %q: %s", ErrOpFailed, key, rep.Err)
	}
	return nil
}

// Add atomically adds delta to the integer at key on database db and returns
// the new value.
func (t *Tx) Add(ctx context.Context, db int, key string, delta int64) (int64, error) {
	rep, err := t.exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: key, Delta: delta})
	if err != nil {
		return 0, err
	}
	if !rep.OK {
		return 0, fmt.Errorf("%w: add %q: %s", ErrOpFailed, key, rep.Err)
	}
	return rep.Num, nil
}

// CheckAtLeast installs a commitment-time guard: if the integer at key is
// below min, the database refuses to commit the try (votes no) and
// ErrCheckFailed is returned. Returning the error from Logic aborts the try;
// swallowing it and returning a normal result reproduces the paper's model
// of user-level aborts, where the databases refuse the result instead.
func (t *Tx) CheckAtLeast(ctx context.Context, db int, key string, min int64) error {
	rep, err := t.exec(ctx, db, msg.Op{Code: msg.OpCheckGE, Key: key, Delta: min})
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("%w: %s", ErrCheckFailed, rep.Err)
	}
	return nil
}

// SimulateWork models data-manipulation time spent at database db (useful
// for benchmarks and capacity planning).
func (t *Tx) SimulateWork(ctx context.Context, db int, d time.Duration) error {
	_, err := t.exec(ctx, db, msg.Op{Code: msg.OpSleep, Delta: int64(d)})
	return err
}

// GetKeyFast reads key's last committed value on its home shard through the
// read-only fast path: the shard answers from its committed snapshot at a
// batch boundary, without locks and without entering the commit path, and
// the shard is not enlisted in the try's participant set. The value is a
// consistent committed snapshot, not a serializable read inside the try —
// it may trail the try's own uncommitted writes. Use it for read-mostly
// logic that tolerates snapshot staleness; use GetKey for reads the try's
// serialization must cover.
func (t *Tx) GetKeyFast(ctx context.Context, key string) ([]byte, int64, error) {
	val, num, err := t.inner.GetFast(ctx, key)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: snap read %q: %s", ErrOpFailed, key, err)
	}
	return val, num, nil
}
