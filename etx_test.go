package etx_test

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"etx"
)

func bankLogic() etx.Logic {
	return func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
		bal, err := tx.Add(ctx, 0, "acct/alice", -10)
		if err != nil {
			return nil, err
		}
		if err := tx.CheckAtLeast(ctx, 0, "acct/alice", 0); err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("balance %d", bal)), nil
	}
}

func newCluster(t *testing.T, cfg etx.Config) *etx.Cluster {
	t.Helper()
	cfg.SuspicionTimeout = 40 * time.Millisecond
	cfg.ClientBackoff = 50 * time.Millisecond
	c, err := etx.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPublicAPIQuickstart(t *testing.T) {
	c := newCluster(t, etx.Config{
		Seed:  map[string]int64{"acct/alice": 100},
		Logic: bankLogic(),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Issue(ctx, 1, []byte("withdraw"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "balance 90" {
		t.Errorf("result = %q", res)
	}
	if bal, _ := c.ReadInt(1, "acct/alice"); bal != 90 {
		t.Errorf("balance = %d", bal)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExactlyOnceAcrossPrimaryCrash(t *testing.T) {
	started := make(chan struct{}, 8)
	logic := func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		// Slow enough for the crash to land mid-compute.
		if err := tx.SimulateWork(ctx, 0, 80*time.Millisecond); err != nil {
			return nil, err
		}
		bal, err := tx.Add(ctx, 0, "acct/alice", -10)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("balance %d", bal)), nil
	}
	c := newCluster(t, etx.Config{
		Seed:  map[string]int64{"acct/alice": 100},
		Logic: logic,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	done := make(chan error, 1)
	var res []byte
	go func() {
		var err error
		res, err = c.Issue(ctx, 1, []byte("withdraw"))
		done <- err
	}()
	<-started
	time.Sleep(20 * time.Millisecond)
	c.CrashAppServer(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(res) != "balance 90" {
		t.Errorf("result = %q", res)
	}
	if bal, _ := c.ReadInt(1, "acct/alice"); bal != 90 {
		t.Errorf("balance = %d, want exactly-once withdrawal", bal)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDBRecovery(t *testing.T) {
	c := newCluster(t, etx.Config{
		Seed:  map[string]int64{"acct/alice": 100},
		Logic: bankLogic(),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := c.Issue(ctx, 1, nil); err != nil {
		t.Fatal(err)
	}
	c.CrashDBServer(1)
	if _, err := c.ReadInt(1, "x"); err == nil {
		t.Error("reads from a crashed database must fail")
	}
	if err := c.RecoverDBServer(1); err != nil {
		t.Fatal(err)
	}
	// Committed state survived; new requests work.
	if bal, _ := c.ReadInt(1, "acct/alice"); bal != 90 {
		t.Errorf("balance after recovery = %d", bal)
	}
	if _, err := c.Issue(ctx, 1, nil); err != nil {
		t.Fatal(err)
	}
	if bal, _ := c.ReadInt(1, "acct/alice"); bal != 80 {
		t.Errorf("balance = %d", bal)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICheckFailedSurfacesToLogic(t *testing.T) {
	sawCheck := false
	var mu sync.Mutex
	logic := func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
		_, err := tx.Add(ctx, 0, "seats", -1)
		if err != nil {
			return nil, err
		}
		if err := tx.CheckAtLeast(ctx, 0, "seats", 0); err != nil {
			if !errors.Is(err, etx.ErrCheckFailed) {
				return nil, err
			}
			mu.Lock()
			sawCheck = true
			mu.Unlock()
			// Footnote 4: compute an informational result instead; but since
			// the branch is poisoned, this try aborts and is retried — so
			// surface an error until a clean try can report sold-out.
			return []byte("sold-out"), nil
		}
		return []byte("booked"), nil
	}
	c := newCluster(t, etx.Config{
		Seed:  map[string]int64{"seats": 1},
		Logic: logic,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// First booking takes the last seat.
	res, err := c.Issue(ctx, 1, nil)
	if err != nil || string(res) != "booked" {
		t.Fatalf("first booking = %q, %v", res, err)
	}
	// Second booking trips the guard; the poisoned try is refused by the
	// database, retried, and every retry trips again — the delivered result
	// is the sold-out one ONLY when the logic eventually avoids poisoning.
	// Here the logic always poisons, so the databases keep refusing; the
	// client would retry forever. Use a short context to observe that the
	// at-most-once side holds: nothing committed.
	shortCtx, cancel2 := context.WithTimeout(ctx, 400*time.Millisecond)
	defer cancel2()
	if _, err := c.Issue(shortCtx, 1, nil); err == nil {
		t.Fatal("expected the poisoned-result request to time out")
	}
	mu.Lock()
	defer mu.Unlock()
	if !sawCheck {
		t.Error("logic never observed ErrCheckFailed")
	}
	if seats, _ := c.ReadInt(1, "seats"); seats != 0 {
		t.Errorf("seats = %d, the refused tries must not commit", seats)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMultiDB(t *testing.T) {
	logic := func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
		if tx.NumDBs() != 2 {
			return nil, fmt.Errorf("want 2 dbs, have %d", tx.NumDBs())
		}
		if _, err := tx.Add(ctx, 0, "left", 1); err != nil {
			return nil, err
		}
		if _, err := tx.Add(ctx, 1, "right", 1); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	}
	c := newCluster(t, etx.Config{DataServers: 2, Logic: logic})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Issue(ctx, 1, nil); err != nil {
		t.Fatal(err)
	}
	l, _ := c.ReadInt(1, "left")
	r, _ := c.ReadInt(2, "right")
	if l != 1 || r != 1 {
		t.Errorf("left=%d right=%d, want atomic commit on both", l, r)
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := etx.New(etx.Config{}); err == nil {
		t.Fatal("missing Logic must be rejected")
	}
	c := newCluster(t, etx.Config{Logic: bankLogic(), Seed: map[string]int64{"acct/alice": 50}})
	if _, err := c.Issue(context.Background(), 99, nil); err == nil {
		t.Fatal("unknown client must be rejected")
	}
	// Out-of-range database index inside logic.
	c2 := newCluster(t, etx.Config{Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
		_, _, err := tx.Get(ctx, 7, "k")
		if err == nil {
			return nil, errors.New("index 7 must fail")
		}
		return []byte("checked"), nil
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if res, err := c2.Issue(ctx, 1, nil); err != nil || string(res) != "checked" {
		t.Fatalf("res=%q err=%v", res, err)
	}
}

func TestPublicAPIRawPutGet(t *testing.T) {
	c := newCluster(t, etx.Config{Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
		if err := tx.Put(ctx, 0, "doc", req); err != nil {
			return nil, err
		}
		v, _, err := tx.Get(ctx, 0, "doc")
		if err != nil {
			return nil, err
		}
		return v, nil
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Issue(ctx, 1, []byte("payload"))
	if err != nil || string(res) != "payload" {
		t.Fatalf("res=%q err=%v", res, err)
	}
	v, ok := c.Read(1, "doc")
	if !ok || string(v) != "payload" {
		t.Fatalf("Read = %q,%v", v, ok)
	}
}

// TestPublicAPISharded: a 4-shard deployment routes the keyed Tx methods to
// each key's home shard, seeds each database with only the keys it owns,
// and keeps exactly-once semantics across a shard restart mid-run.
func TestPublicAPISharded(t *testing.T) {
	seed := map[string]int64{}
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("cnt/%02d", i)
		// Seed the exact keys the workload increments, so the leak
		// assertion at the end truly checks that seeding was per-shard.
		seed["acct/"+keys[i]] = 0
	}
	c := newCluster(t, etx.Config{
		Shards:  4,
		Workers: 4,
		Seed:    seed,
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			n, err := tx.AddKey(ctx, string(req), 1)
			if err != nil {
				return nil, err
			}
			return []byte(strconv.FormatInt(n, 10)), nil
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	reqs := make([][]byte, 0, 2*len(keys))
	for round := 0; round < 2; round++ {
		for _, k := range keys {
			reqs = append(reqs, []byte("acct/"+k))
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Client(1).IssueBatch(ctx, reqs)
		done <- err
	}()
	// Restart one shard while the batch runs: in-flight tries against it
	// abort and retry; everything still commits exactly once.
	time.Sleep(20 * time.Millisecond)
	c.CrashDBServer(2)
	time.Sleep(20 * time.Millisecond)
	if err := c.RecoverDBServer(2); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	for _, k := range keys {
		key := "acct/" + k
		home := c.HomeDB(key)
		n, err := c.ReadInt(home, key)
		if err != nil {
			t.Fatalf("ReadInt(%d, %q): %v", home, key, err)
		}
		if n != 2 {
			t.Errorf("%q on home db %d = %d, want 2", key, home, n)
		}
		// Per-shard seeding: no other database ever held the key.
		for db := 1; db <= 4; db++ {
			if db == home {
				continue
			}
			if _, ok := c.Read(db, key); ok {
				t.Errorf("%q leaked onto non-home db %d", key, db)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
