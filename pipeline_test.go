package etx_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"etx"
	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/rchan"
	"etx/internal/stablestore"
	"etx/internal/transport/tcptransport"
	"etx/internal/xadb"
)

// TestClientPipelinesUnderAppServerCrash drives 16 goroutines through ONE
// client handle while the primary application server crashes mid-run: every
// request must commit exactly once (counter arithmetic + the oracle).
func TestClientPipelinesUnderAppServerCrash(t *testing.T) {
	const goroutines = 16
	c := newCluster(t, etx.Config{
		Seed:    map[string]int64{"counter": 0},
		Workers: 8,
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			if err := tx.SimulateWork(ctx, 0, 10*time.Millisecond); err != nil {
				return nil, err
			}
			n, err := tx.Add(ctx, 0, "counter", 1)
			if err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("%d", n)), nil
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cl := c.Client(1)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := cl.Issue(ctx, []byte("inc"))
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			if _, err := strconv.Atoi(string(res)); err != nil {
				t.Errorf("malformed result %q", res)
			}
		}()
	}
	// Land the crash while the pipelined burst is in flight.
	time.Sleep(25 * time.Millisecond)
	c.CrashAppServer(1)
	wg.Wait()

	if n, _ := c.ReadInt(1, "counter"); n != goroutines {
		t.Errorf("counter = %d, want %d (each pipelined request exactly once)", n, goroutines)
	}
	if cl.InFlight() != 0 {
		t.Errorf("InFlight = %d after all requests resolved", cl.InFlight())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIssueAsyncCancelReleasesSlot is the regression test for the in-flight
// map: cancelling a pending future must free its slot.
func TestIssueAsyncCancelReleasesSlot(t *testing.T) {
	c := newCluster(t, etx.Config{
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			return []byte("ok"), nil
		},
	})
	// With the whole middle tier down nothing ever answers, so the request
	// stays pending until its context is cancelled.
	for i := 1; i <= 3; i++ {
		c.CrashAppServer(i)
	}
	cl := c.Client(1)
	ctx, cancel := context.WithCancel(context.Background())
	f, err := cl.IssueAsync(ctx, []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	if n := cl.InFlight(); n != 1 {
		t.Fatalf("InFlight = %d, want 1", n)
	}
	cancel()
	if _, err := f.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled future resolved with %v, want context.Canceled", err)
	}
	if n := cl.InFlight(); n != 0 {
		t.Fatalf("InFlight = %d after cancel, want 0 (slot leaked)", n)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDialConcurrentOverTCP runs the full stack over real loopback TCP — the
// cmd/ binaries' wiring — but connects the client through the public
// etx.Dial API and pipelines 16 concurrent requests through it.
func TestDialConcurrentOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP end-to-end test skipped in -short mode")
	}
	const pipelined = 16

	appIDs := []id.NodeID{id.AppServer(1), id.AppServer(2), id.AppServer(3)}
	dbID := id.DBServer(1)

	// Two-pass wiring for the servers: listen on :0 everywhere, then install
	// the complete address book.
	eps := make(map[id.NodeID]*tcptransport.Endpoint)
	book := make(map[id.NodeID]string)
	for _, n := range append(append([]id.NodeID{}, appIDs...), dbID) {
		ep, err := tcptransport.Listen(tcptransport.Config{Self: n, Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[n] = ep
		book[n] = ep.Addr()
	}

	store, err := stablestore.OpenFile(filepath.Join(t.TempDir(), "db.journal"), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.CloseFile() })
	engine, err := xadb.Open(store, xadb.Config{Self: dbID})
	if err != nil {
		t.Fatal(err)
	}
	engine.Seed([]kv.Write{{Key: "counter", Val: kv.EncodeInt(0)}})
	dbSrv, err := core.NewDataServer(core.DataServerConfig{
		Self: dbID, AppServers: appIDs, Engine: engine,
		Endpoint: rchan.Wrap(eps[dbID], 50*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	dbSrv.Start()
	t.Cleanup(dbSrv.Stop)

	logic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		rep, err := tx.Exec(ctx, tx.DBs()[0], msg.Op{Code: msg.OpAdd, Key: "counter", Delta: 1})
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d", rep.Num)), nil
	})
	for _, appID := range appIDs {
		srv, err := core.NewAppServer(core.AppServerConfig{
			Self: appID, AppServers: appIDs, DataServers: []id.NodeID{dbID},
			Endpoint:       rchan.Wrap(eps[appID], 50*time.Millisecond),
			Logic:          logic,
			SuspectTimeout: 300 * time.Millisecond,
			Workers:        pipelined,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(srv.Stop)
	}

	// Connect through the public API, then teach the servers the client's
	// bound address (the cmd/ deployments do this with the -clients flag).
	appBook := ""
	for i, appID := range appIDs {
		if i > 0 {
			appBook += ","
		}
		appBook += fmt.Sprintf("%d=%s", appID.Index, book[appID])
	}
	cl, err := etx.Dial(etx.DialConfig{
		Listen:     "127.0.0.1:0",
		AppServers: appBook,
		Backoff:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	book[id.Client(1)] = cl.Addr()
	for _, ep := range eps {
		ep.SetPeers(book)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	batch := make([][]byte, pipelined)
	for i := range batch {
		batch[i] = []byte("inc")
	}
	results, err := cl.IssueBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if _, err := strconv.Atoi(string(r)); err != nil {
			t.Errorf("result %d malformed: %q", i, r)
		}
	}
	if n, _ := engine.Store().GetInt("counter"); n != pipelined {
		t.Fatalf("counter = %d, want %d (each pipelined TCP request exactly once)", n, pipelined)
	}
}
