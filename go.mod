module etx

go 1.24
