// Repository-level benchmarks: one per table and figure of the paper's
// evaluation, plus microbenchmarks of the substrates and the design-choice
// ablations listed in DESIGN.md. The latency figures here use the calibrated
// cost model at scale 0.02 (2% of the paper's real-time component costs), so
// ns/op values are comparable across protocols but not to the paper's
// absolute milliseconds — `go run ./cmd/etxbench -exp f8 -scale 1` reproduces
// those.
package etx_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etx"
	"etx/internal/bench"
	"etx/internal/consensus"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/lockmgr"
	"etx/internal/msg"
	"etx/internal/stablestore"
	"etx/internal/transport"
	"etx/internal/xadb"
)

const benchScale = 0.02

// --- Figure 8: one benchmark per protocol column ----------------------------

func benchmarkProtocol(b *testing.B, protocol string) {
	b.Helper()
	r, err := bench.NewRunner(protocol, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Stop()
	ctx := context.Background()
	// Warm-up request outside the timer.
	if err := r.Issue(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Issue(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8_Baseline(b *testing.B) { benchmarkProtocol(b, bench.ProtocolBaseline) }
func BenchmarkFigure8_AR(b *testing.B)       { benchmarkProtocol(b, bench.ProtocolAR) }
func BenchmarkFigure8_TwoPC(b *testing.B)    { benchmarkProtocol(b, bench.Protocol2PC) }

// BenchmarkFigure7_PrimaryBackup covers the fourth protocol of Figure 7
// (the paper did not measure its latency separately, noting its components
// match the replicated scheme's; the benchmark verifies that).
func BenchmarkFigure7_PrimaryBackup(b *testing.B) { benchmarkProtocol(b, bench.ProtocolPB) }

// --- Figure 1: fail-over executions ------------------------------------------

// benchmarkFailover builds a fresh deployment per iteration, crashes the
// primary mid-request, and measures the client-observed latency of the
// fail-over (scenario (c)/(d) of Figure 1, depending on timing).
func BenchmarkFigure1_Failover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var reached atomic.Bool
		c, err := etx.New(etx.Config{
			Seed:             map[string]int64{"acct/a": 1 << 30},
			SuspicionTimeout: 20 * time.Millisecond,
			ClientBackoff:    30 * time.Millisecond,
			Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
				reached.Store(true)
				if err := tx.SimulateWork(ctx, 0, 30*time.Millisecond); err != nil {
					return nil, err
				}
				bal, err := tx.Add(ctx, 0, "acct/a", -1)
				if err != nil {
					return nil, err
				}
				return []byte(fmt.Sprintf("%d", bal)), nil
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		b.StartTimer()
		done := make(chan error, 1)
		go func() {
			_, err := c.Issue(ctx, 1, nil)
			done <- err
		}()
		for !reached.Load() {
			time.Sleep(time.Millisecond)
		}
		c.CrashAppServer(1)
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cancel()
		c.Close()
		b.StartTimer()
	}
}

// --- substrate microbenchmarks -----------------------------------------------

func BenchmarkWORegister_UncontendedWrite(b *testing.B) {
	net := transport.NewMemNetwork(transport.Options{})
	defer net.Close()
	peers := []id.NodeID{id.AppServer(1), id.AppServer(2), id.AppServer(3)}
	var nodes []*consensus.Node
	for _, p := range peers {
		ep, err := net.Attach(p)
		if err != nil {
			b.Fatal(err)
		}
		node, err := consensus.New(consensus.Config{
			Self: p, Peers: peers, Detector: fd.NewScripted(),
			Poll: 200 * time.Microsecond,
			Send: func(to id.NodeID, pl msg.Payload) error {
				return ep.Send(msg.Envelope{To: to, Payload: pl})
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer node.Stop()
		nodes = append(nodes, node)
		go func() {
			for env := range ep.Recv() {
				node.Handle(env.From, env.Payload)
			}
		}()
	}
	ctx := context.Background()
	val := []byte("appserver-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := msg.RegKey{Array: msg.RegA, RID: id.ResultID{Client: id.Client(1), Seq: uint64(i), Try: 1}}
		if _, err := nodes[0].Propose(ctx, key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodec_Encode(b *testing.B) {
	env := msg.Envelope{
		From: id.AppServer(1), To: id.DBServer(2),
		Payload: msg.Exec{
			RID:    id.ResultID{Client: id.Client(1), Seq: 42, Try: 3},
			CallID: 7,
			Op:     msg.Op{Code: msg.OpAdd, Key: "acct/alice", Delta: -10},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := msg.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodec_Decode(b *testing.B) {
	env := msg.Envelope{
		From: id.AppServer(1), To: id.DBServer(2),
		Payload: msg.Exec{
			RID:    id.ResultID{Client: id.Client(1), Seq: 42, Try: 3},
			CallID: 7,
			Op:     msg.Op{Code: msg.OpAdd, Key: "acct/alice", Delta: -10},
		},
	}
	buf, err := msg.Encode(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := msg.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_PreparedCommit(b *testing.B) {
	e, err := xadb.Open(stablestore.New(0), xadb.Config{Self: id.DBServer(1)})
	if err != nil {
		b.Fatal(err)
	}
	e.Seed([]kv.Write{{Key: "acct", Val: kv.EncodeInt(0)}})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rid := id.ResultID{Client: id.Client(1), Seq: uint64(i), Try: 1}
		if rep := e.Exec(ctx, rid, msg.Op{Code: msg.OpAdd, Key: "acct", Delta: 1}); !rep.OK {
			b.Fatal(rep.Err)
		}
		if v := e.Vote(rid); v != msg.VoteYes {
			b.Fatal("vote no")
		}
		if o := e.Decide(rid, msg.OutcomeCommit); o != msg.OutcomeCommit {
			b.Fatal("abort")
		}
	}
}

func BenchmarkLockManager_AcquireRelease(b *testing.B) {
	m := lockmgr.New()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := id.ResultID{Client: id.Client(1), Seq: uint64(i), Try: 1}
		if err := m.Acquire(ctx, tx, "hot", lockmgr.Exclusive); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(tx)
	}
}

// --- end-to-end throughput over the public API --------------------------------

// benchmarkPipelined pushes b.N requests through `clients` client handles
// with `inflight` worker goroutines per handle, so the 1×K and K×1 shapes
// are directly comparable: same deployment, same total work, different
// multiplexing. The speedup of 1×K over 1×1 measures what concurrent
// pipelining on a single handle buys.
func benchmarkPipelined(b *testing.B, clients, inflight int) {
	c, err := etx.New(etx.Config{
		Clients: clients,
		Workers: clients * inflight,
		Seed:    map[string]int64{"acct/a": 1 << 40},
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			_, err := tx.Add(ctx, 0, "acct/a", -1)
			return []byte("ok"), err
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i := 1; i <= clients; i++ {
		if _, err := c.Client(i).Issue(ctx, nil); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 1; i <= clients; i++ {
		cl := c.Client(i)
		for w := 0; w < inflight; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for next.Add(1) <= int64(b.N) {
					if _, err := cl.Issue(ctx, nil); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	b.StopTimer()
	if err := c.CheckInvariants(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPipelined_1Client1InFlight(b *testing.B)   { benchmarkPipelined(b, 1, 1) }
func BenchmarkPipelined_1Client16InFlight(b *testing.B)  { benchmarkPipelined(b, 1, 16) }
func BenchmarkPipelined_16Clients1InFlight(b *testing.B) { benchmarkPipelined(b, 16, 1) }

func BenchmarkThroughput_PublicAPI(b *testing.B) {
	c, err := etx.New(etx.Config{
		Seed: map[string]int64{"acct/a": 1 << 40},
		Logic: func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
			_, err := tx.Add(ctx, 0, "acct/a", -1)
			return []byte("ok"), err
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Issue(ctx, 1, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Issue(ctx, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := c.CheckInvariants(); err != nil {
		b.Fatal(err)
	}
}
